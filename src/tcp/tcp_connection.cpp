#include "tcp/tcp_connection.hpp"

#include <algorithm>

#include "tcp/host_stack.hpp"
#include "tcp/state_machine.hpp"

namespace sttcp::tcp {

using util::Seq32;

namespace {
// Invoke a callback by copy: handlers may replace the callback set from
// inside the call (accept handlers do), which would otherwise destroy the
// std::function we are executing.
template <typename F, typename... Args>
void fire(const F& f, Args&&... args) {
    if (!f) return;
    F copy = f;
    copy(std::forward<Args>(args)...);
}
} // namespace

TcpConnection::TcpConnection(HostStack& stack, FlowKey key, TcpConfig config)
    : stack_(stack),
      key_(key),
      config_(config),
      snd_(config.send_buffer_size),
      rcv_(config.recv_buffer_size),
      rtt_(config.initial_rto, config.min_rto, config.max_rto),
      cc_(config.mss) {}

TcpConnection::~TcpConnection() {
    cancel_retransmit_timer();
    stack_.sim().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(persist_timer_);
    persist_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(time_wait_timer_);
    time_wait_timer_ = sim::kInvalidEventId;
}

// ---------------------------------------------------------------- lifecycle

void TcpConnection::open_active() {
    iss_ = stack_.generate_isn();
    snd_una_ = iss_;
    snd_nxt_ = iss_;
    snd_max_ = iss_;
    snd_.set_una(iss_ + 1);
    transition(TcpState::kSynSent);
    send_syn(/*with_ack=*/false);
}

void TcpConnection::open_passive(const net::TcpSegment& syn) {
    irs_ = syn.seq;
    rcv_.init(syn.seq + 1);
    if (syn.mss) config_.mss = std::min(config_.mss, std::max(*syn.mss, kMinMss));
    iss_ = stack_.generate_isn();
    snd_una_ = iss_;
    snd_nxt_ = iss_;
    snd_max_ = iss_;
    snd_.set_una(iss_ + 1);
    snd_wnd_ = syn.window;
    snd_wl1_ = syn.seq;
    snd_wl2_ = Seq32{0};
    transition(TcpState::kSynReceived);
    send_syn(/*with_ack=*/true);
}

void TcpConnection::anchor_shadow(Seq32 primary_iss) {
    if (state_ != TcpState::kSynReceived) return;
    rebase_send_seq(primary_iss + 1);
    snd_una_ = primary_iss;   // our twin's SYN/ACK is in flight, not yet acked
    adopt_peer_seq_ = false;  // anchored exactly; never re-anchor from acks
    cancel_retransmit_timer();
    consecutive_retransmits_ = 0;
    rtt_pending_ = false;
    // Deliberately NOT established: the client has not acked the SYN/ACK
    // (it may never have received it). process_ack() completes the
    // handshake from the next tapped client ack; a shadow promoted while
    // still here re-sends the SYN/ACK from on_takeover().
}

void TcpConnection::open_shadow_join(Seq32 first_byte_seq, Seq32 iss) {
    irs_ = first_byte_seq - 1;
    rcv_.init(first_byte_seq);
    iss_ = iss;
    snd_una_ = iss_ + 1;
    snd_nxt_ = snd_una_;
    snd_max_ = snd_una_;
    snd_.set_una(snd_una_);
    snd_wnd_ = 0;  // learned from the first tapped client segment
    snd_wl1_ = first_byte_seq - 1;
    snd_wl2_ = iss_;
    shadow_mode_ = true;
    if constexpr (check::kEnabled) auditor_.reset_baselines();
    become_established();
}

void TcpConnection::close() {
    switch (state_) {
        case TcpState::kSynSent:
            finish("closed");
            return;
        case TcpState::kSynReceived:
        case TcpState::kEstablished:
            transition(TcpState::kFinWait1);
            break;
        case TcpState::kCloseWait:
            transition(TcpState::kLastAck);
            break;
        case TcpState::kClosed:
        case TcpState::kListen:
        case TcpState::kFinWait1:
        case TcpState::kFinWait2:
        case TcpState::kClosing:
        case TcpState::kLastAck:
        case TcpState::kTimeWait:
            return;  // already closing or closed
    }
    fin_queued_ = true;
    try_send();
}

void TcpConnection::abort() {
    if (state_ != TcpState::kClosed && state_ != TcpState::kListen &&
        state_ != TcpState::kSynSent) {
        send_rst(snd_nxt_);
    }
    finish("aborted");
}

void TcpConnection::rebase_send_seq(Seq32 una) {
    iss_ = una - 1;
    snd_una_ = una;
    snd_nxt_ = una + static_cast<std::uint32_t>(snd_.size());
    snd_max_ = snd_nxt_;
    snd_.set_una(una);
    if constexpr (check::kEnabled) auditor_.audit_rebase(*this, una, stack_.sim().now());
}

void TcpConnection::release_shadow_acked() {
    // NOTE: deliberately does not fire on_writable — callers in the send()
    // path would recurse into the application's pump loop. The application
    // observes the freed space on its next send() call.
    if (!shadow_peer_ack_valid_) return;
    Seq32 data_end = snd_.una() + static_cast<std::uint32_t>(snd_.size());
    Seq32 effective = util::min(shadow_peer_ack_max_, data_end);
    if (fin_sent_) effective = util::min(effective, fin_seq_);
    if (effective <= snd_una_) return;
    snd_.ack_to(effective);
    snd_una_ = effective;
    if (snd_nxt_ < effective) snd_nxt_ = effective;
    snd_max_ = util::max(snd_max_, snd_nxt_);
    if (flight_size() == 0 && !(fin_sent_ && !fin_fully_acked())) cancel_retransmit_timer();
}

void TcpConnection::on_takeover() {
    if (state_ == TcpState::kClosed) return;
    if (shadow_mode_) adopted_ = true;
    shadow_mode_ = false;
    cc_.on_idle_restart();
    rtt_.reset_backoff();
    if (state_ == TcpState::kSynReceived) {
        // Promoted mid-handshake: the client never acked the SYN/ACK and
        // may never have received the primary's copy (found by the chaos
        // soak: corrupted SYN/ACK + primary crash left the client
        // retransmitting SYNs against a shadow that believed the handshake
        // was done). Resend it; send_syn arms the retransmit timer, so the
        // normal SYN_RCVD schedule drives the rest.
        send_syn(/*with_ack=*/true);
        return;
    }
    if (flight_size() > 0 || (fin_sent_ && !fin_fully_acked())) {
        // Everything outstanding was last sent by the (dead) primary; stream
        // the whole backlog again from the cumulative ack under slow start.
        snd_nxt_ = snd_una_;
        try_send();
        arm_retransmit_timer();
    } else {
        send_ack_now();
        try_send();
    }
}

// --------------------------------------------------------------------- data

std::size_t TcpConnection::send(util::ByteView data) {
    if (fin_queued_) return 0;
    switch (state_) {
        case TcpState::kSynSent:
        case TcpState::kSynReceived:
        case TcpState::kEstablished:
        case TcpState::kCloseWait:
            break;
        case TcpState::kClosed:
        case TcpState::kListen:
        case TcpState::kFinWait1:
        case TcpState::kFinWait2:
        case TcpState::kClosing:
        case TcpState::kLastAck:
        case TcpState::kTimeWait:
            return 0;
    }
    std::size_t n = snd_.write(data);
    // Shadow mode: bytes the peer already acked (as delivered by the
    // primary) are released the moment the replica produces them.
    if (shadow_mode_) release_shadow_acked();
    if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) try_send();
    return n;
}

std::size_t TcpConnection::copy_received(util::Seq32 seq, std::span<std::uint8_t> out) const {
    return rcv_.copy_range(seq, out);
}

std::size_t TcpConnection::read(std::span<std::uint8_t> out) {
    std::size_t limit = out.size();
    if (retention_) limit = std::min(limit, retention_->max_consumable());
    if (limit == 0) return 0;

    Seq32 front_seq = rcv_.read_seq();
    std::uint16_t window_before = advertised_window();
    std::size_t n = rcv_.read(out.subspan(0, std::min(limit, out.size())));
    if (n == 0) return 0;
    if (retention_) retention_->on_consumed(front_seq, util::ByteView{out.data(), n});

    // Receiver-side window update: if we had closed the window below one MSS
    // and reading opened it substantially, tell the peer (it may be probing).
    if (window_before < config_.mss &&
        rcv_.window() >= std::min<std::size_t>(config_.mss, rcv_.capacity() / 2) &&
        (state_ == TcpState::kEstablished || state_ == TcpState::kFinWait1 ||
         state_ == TcpState::kFinWait2)) {
        send_ack_now();
    }
    if constexpr (check::kEnabled) auditor_.audit_state(*this, stack_.sim().now());
    return n;
}

// ------------------------------------------------------------ segment input

void TcpConnection::on_segment(const net::TcpSegment& seg) {
    if (state_ == TcpState::kClosed) return;
    ++stats_.segments_received;

    if (state_ == TcpState::kSynSent) {
        process_syn_sent(seg);
    } else {
        process_general(seg);
    }
    if constexpr (check::kEnabled) auditor_.audit_state(*this, stack_.sim().now());
}

void TcpConnection::process_syn_sent(const net::TcpSegment& seg) {
    bool ack_ok = seg.flags.ack && seg.ack > iss_ && seg.ack <= snd_nxt_;
    if (seg.flags.ack && !ack_ok) {
        if (!seg.flags.rst) send_rst(seg.ack);
        return;
    }
    if (seg.flags.rst) {
        if (ack_ok) finish("connection refused");
        return;
    }
    if (!seg.flags.syn) return;

    irs_ = seg.seq;
    rcv_.init(seg.seq + 1);
    if (seg.mss) config_.mss = std::min(config_.mss, std::max(*seg.mss, kMinMss));
    snd_wnd_ = seg.window;
    snd_wl1_ = seg.seq;
    snd_wl2_ = seg.ack;

    if (ack_ok) {
        snd_una_ = seg.ack;
        if (rtt_pending_) {
            rtt_.sample(stack_.sim().now() - rtt_sent_at_);
            rtt_pending_ = false;
        }
        cancel_retransmit_timer();
        consecutive_retransmits_ = 0;
        become_established();
        send_ack_now();
        try_send();
    } else {
        // Simultaneous open.
        transition(TcpState::kSynReceived);
        send_syn(/*with_ack=*/true);
    }
}

bool TcpConnection::sequence_acceptable(const net::TcpSegment& seg) const {
    std::uint32_t seg_len = seg.seq_len();
    std::uint32_t win = static_cast<std::uint32_t>(rcv_.window());
    Seq32 nxt = ack_seq();
    if (seg_len == 0 && win == 0) return seg.seq == nxt;
    if (seg_len == 0) return util::in_window(seg.seq, nxt, win);
    if (win == 0) return false;
    return util::in_window(seg.seq, nxt, win) ||
           util::in_window(seg.seq + (seg_len - 1), nxt, win) ||
           // Old-but-overlapping segments (partially duplicate data) are
           // acceptable; payload trimming handles the overlap.
           (seg.seq < nxt && nxt < seg.seq + seg_len);
}

void TcpConnection::process_general(const net::TcpSegment& seg) {
    // Step 1: sequence check.
    if (!sequence_acceptable(seg)) {
        if (!seg.flags.rst) send_ack_now();
        return;
    }

    // Step 2: RST.
    if (seg.flags.rst) {
        finish("connection reset");
        return;
    }

    // Step 3: SYN.
    if (seg.flags.syn) {
        if (state_ == TcpState::kSynReceived && seg.seq == irs_) {
            // Retransmitted SYN: our SYN/ACK was lost — resend it.
            send_syn(/*with_ack=*/true);
            return;
        }
        // SYN in the window of a synchronized connection is an error.
        send_rst(snd_nxt_);
        finish("SYN received in synchronized state");
        return;
    }

    // Step 4: ACK (mandatory from here on).
    if (!seg.flags.ack) return;
    if (!process_ack(seg)) return;
    if (state_ == TcpState::kClosed) return;

    // Step 5: payload.
    process_payload(seg);

    // Step 6: FIN.
    if (seg.flags.fin) process_fin(seg);
}

bool TcpConnection::process_ack(const net::TcpSegment& seg) {
    if (state_ == TcpState::kSynReceived) {
        // Adoption is only sound from a segment that provably carries the
        // client's *handshake* acknowledgment (ack = primary_iss + 1): the
        // client's first post-SYN segment, before we have received any
        // data. A later ack (possible when the tap lost the early
        // segments) already covers primary response bytes and would anchor
        // our send stream forward of the primary's — silent divergence.
        bool provably_initial =
            rcv_.stream_offset() == 0 && seg.seq == irs_ + 1u && !remote_fin_seq_;
        if (adopt_peer_seq_ && provably_initial) {
            // ST-TCP backup ISN synchronization (paper §4.1): adopt the
            // primary's sequence numbers from the client's handshake ACK.
            rebase_send_seq(seg.ack);
        } else if (adopt_peer_seq_) {
            // Cannot anchor from this segment; stay in SYN_RCVD and wait
            // for the tapped primary SYN/ACK (anchor_shadow) or for
            // late-join recovery. Do not RST a live flow.
            return false;
        } else if (seg.ack > snd_una_ && seg.ack <= snd_nxt_) {
            snd_una_ = seg.ack;
        } else if (shadow_mode_ && seg.ack > snd_nxt_) {
            // Anchored shadow whose tap lost the client's handshake ACK:
            // this later client segment still proves the client completed
            // the handshake with our (suppressed) twin. The overshoot acks
            // primary bytes our replica has not generated yet — the shadow
            // high-water tracking below accounts for those.
            snd_una_ = snd_nxt_;
        } else if (shadow_mode_) {
            return false;  // stale tapped duplicate; keep waiting
        } else {
            send_rst(seg.ack);
            return false;
        }
        if (rtt_pending_) {
            rtt_.sample(stack_.sim().now() - rtt_sent_at_);
            rtt_pending_ = false;
        }
        cancel_retransmit_timer();
        consecutive_retransmits_ = 0;
        become_established();
        // Fall through to regular ACK processing for window update etc.
    }

    if (shadow_mode_ && seg.ack > snd_max_) {
        // The peer acks bytes our suppressed twin (the primary) delivered
        // but our replica has not generated yet. Remember the high-water
        // mark, release what we do have, and keep processing the segment —
        // its payload (a client request) is exactly what lets us catch up.
        shadow_peer_ack_max_ = shadow_peer_ack_valid_
                                   ? util::max(shadow_peer_ack_max_, seg.ack)
                                   : seg.ack;
        shadow_peer_ack_valid_ = true;
        Seq32 una_before = snd_una_;
        release_shadow_acked();
        if (snd_una_ > una_before) fire(callbacks_.on_writable);
    }

    Seq32 ack = seg.ack;
    if (shadow_mode_ && ack > snd_max_) ack = snd_max_;

    if (adopted_ && ack > snd_max_) {
        // Promoted replica: the client can legitimately hold bytes the dead
        // primary sent that we never (re)transmitted — e.g. sent while the
        // tap was dark. Whatever the app has already regenerated is
        // byte-identical to what the primary sent, so count it as
        // transmitted-and-acked; anything beyond arrives as the app refills
        // the buffer and the client's duplicate acks walk us forward.
        Seq32 data_end = snd_.una() + static_cast<std::uint32_t>(snd_.size());
        Seq32 fast_forward = util::min(ack, data_end);
        if (fast_forward > snd_max_) snd_max_ = fast_forward;
        if (ack > snd_max_) ack = snd_max_;
    }

    if (ack > snd_max_) {
        // Acks something we never sent.
        send_ack_now();
        return false;
    }

    maybe_update_send_window(seg);

    if (ack > snd_una_) {
        // New data acknowledged.
        std::uint32_t acked = ack - snd_una_;
        snd_una_ = ack;
        if (snd_nxt_ < ack) snd_nxt_ = ack;  // recovery: skip re-sending acked data
        Seq32 data_ack = ack;
        if (fin_sent_ && ack == fin_seq_ + 1) data_ack = fin_seq_;
        snd_.ack_to(data_ack);

        dup_acks_ = 0;
        consecutive_retransmits_ = 0;
        if (cc_.in_fast_recovery() && seg.ack >= recovery_point_) cc_.exit_fast_recovery();
        cc_.on_ack(acked, flight_size());
        rtt_.reset_backoff();
        if (rtt_pending_ && seg.ack >= rtt_seq_) {
            rtt_.sample(stack_.sim().now() - rtt_sent_at_);
            rtt_pending_ = false;
        }

        if (flight_size() == 0 && !(fin_sent_ && !fin_fully_acked())) {
            cancel_retransmit_timer();
        } else {
            arm_retransmit_timer();
        }

        if (fin_sent_ && fin_fully_acked()) {
            switch (state_) {
                case TcpState::kFinWait1:
                    if (remote_fin_consumed_) {
                        enter_time_wait();
                    } else {
                        transition(TcpState::kFinWait2);
                    }
                    break;
                case TcpState::kClosing:
                    enter_time_wait();
                    break;
                case TcpState::kLastAck:
                    finish("closed");
                    return false;
                case TcpState::kClosed:
                case TcpState::kListen:
                case TcpState::kSynSent:
                case TcpState::kSynReceived:
                case TcpState::kEstablished:
                case TcpState::kFinWait2:
                case TcpState::kCloseWait:
                case TcpState::kTimeWait:
                    break;
            }
        }
        fire(callbacks_.on_writable);
        try_send();
    } else if (seg.ack == snd_una_) {
        bool is_dup = seg.payload.empty() && !seg.flags.fin && seg.window == snd_wnd_ &&
                      flight_size() > 0;
        if (is_dup) {
            ++stats_.dup_acks_in;
            ++dup_acks_;
            if (dup_acks_ == 3) {
                ++stats_.fast_retransmits;
                recovery_point_ = snd_nxt_;
                cc_.on_fast_retransmit(flight_size());
                retransmit_head();
                arm_retransmit_timer();
            } else if (dup_acks_ > 3) {
                cc_.on_dup_ack_in_recovery();
                try_send();
            }
        }
    }

    // Window opened: cancel persist probing and push data.
    if (snd_wnd_ > 0 && persist_timer_ != sim::kInvalidEventId) {
        stack_.sim().cancel(persist_timer_);
        persist_timer_ = sim::kInvalidEventId;
        persist_backoff_ = 0;
        try_send();
    }
    return true;
}

void TcpConnection::maybe_update_send_window(const net::TcpSegment& seg) {
    if (snd_wl1_ < seg.seq || (snd_wl1_ == seg.seq && snd_wl2_ <= seg.ack)) {
        snd_wnd_ = seg.window;
        snd_wl1_ = seg.seq;
        snd_wl2_ = seg.ack;
    }
}

void TcpConnection::process_payload(const net::TcpSegment& seg) {
    if (seg.payload.empty()) return;
    switch (state_) {
        case TcpState::kEstablished:
        case TcpState::kFinWait1:
        case TcpState::kFinWait2:
            break;
        case TcpState::kClosed:
        case TcpState::kListen:
        case TcpState::kSynSent:
        case TcpState::kSynReceived:
        case TcpState::kCloseWait:
        case TcpState::kClosing:
        case TcpState::kLastAck:
        case TcpState::kTimeWait:
            return;  // data after the peer's FIN is ignored
    }

    stats_.bytes_received += seg.payload.size();
    std::uint64_t advanced = rcv_.accept(seg.seq, seg.payload);

    if (advanced == 0) {
        // Duplicate or out-of-order: immediate (duplicate) ACK feeds the
        // sender's fast-retransmit machinery.
        send_ack_now();
        return;
    }

    maybe_consume_remote_fin();
    fire(rcv_advance_hook_);

    ++unacked_segments_;
    if (!config_.delayed_ack || unacked_segments_ >= 2 || rcv_.has_gaps()) {
        send_ack_now();
    } else {
        schedule_delayed_ack();
    }
    fire(callbacks_.on_readable);
}

void TcpConnection::process_fin(const net::TcpSegment& seg) {
    std::uint32_t payload_len = static_cast<std::uint32_t>(seg.payload.size());
    remote_fin_seq_ = seg.seq + payload_len;
    maybe_consume_remote_fin();
    if (!remote_fin_consumed_) {
        // FIN arrived but earlier data is missing; ack what we have.
        send_ack_now();
    }
}

void TcpConnection::maybe_consume_remote_fin() {
    if (remote_fin_consumed_ || !remote_fin_seq_) return;
    if (*remote_fin_seq_ != rcv_.rcv_nxt()) return;
    remote_fin_consumed_ = true;

    send_ack_now();
    switch (state_) {
        case TcpState::kSynReceived:
        case TcpState::kEstablished:
            transition(TcpState::kCloseWait);
            fire(callbacks_.on_remote_fin);
            break;
        case TcpState::kFinWait1:
            if (fin_sent_ && fin_fully_acked()) {
                enter_time_wait();
            } else {
                transition(TcpState::kClosing);
            }
            fire(callbacks_.on_remote_fin);
            break;
        case TcpState::kFinWait2:
            fire(callbacks_.on_remote_fin);
            enter_time_wait();
            break;
        case TcpState::kTimeWait:
            // Retransmitted FIN: re-ack and restart the 2MSL timer.
            enter_time_wait();
            break;
        case TcpState::kClosed:
        case TcpState::kListen:
        case TcpState::kSynSent:
        case TcpState::kCloseWait:
        case TcpState::kClosing:
        case TcpState::kLastAck:
            break;
    }
}

// ------------------------------------------------------------------- output

Seq32 TcpConnection::ack_seq() const {
    return rcv_.rcv_nxt() + (remote_fin_consumed_ ? 1u : 0u);
}

std::uint16_t TcpConnection::advertised_window() const {
    return static_cast<std::uint16_t>(std::min<std::size_t>(rcv_.window(), 65535));
}

Seq32 TcpConnection::send_limit() const {
    return snd_una_ + std::min(snd_wnd_, cc_.cwnd());
}

void TcpConnection::try_send() {
    switch (state_) {
        case TcpState::kEstablished:
        case TcpState::kCloseWait:
        case TcpState::kFinWait1:
        case TcpState::kLastAck:
            break;
        case TcpState::kClosed:
        case TcpState::kListen:
        case TcpState::kSynSent:
        case TcpState::kSynReceived:
        case TcpState::kFinWait2:
        case TcpState::kClosing:
        case TcpState::kTimeWait:
            return;
    }

    while (true) {
        Seq32 data_end = snd_.una() + static_cast<std::uint32_t>(snd_.size());
        if (snd_nxt_ >= data_end) break;  // nothing (left) to send
        std::uint32_t avail = data_end - snd_nxt_;

        Seq32 limit = send_limit();
        if (snd_nxt_ >= limit) {
            if (snd_wnd_ == 0 && flight_size() == 0) arm_persist_timer();
            break;
        }
        std::uint32_t usable = limit - snd_nxt_;
        std::uint32_t n = std::min({avail, usable, static_cast<std::uint32_t>(config_.mss)});
        if (n == 0) break;

        // SND.NXT < SND.MAX means we are go-back-N retransmitting after an
        // RTO; Nagle only applies to genuinely new data.
        bool retransmission = snd_nxt_ < snd_max_;
        if (!retransmission && config_.nagle && n < config_.mss && flight_size() > 0) break;

        bool fin_now = fin_sent_ ? (snd_nxt_ + n == fin_seq_)
                                 : (fin_queued_ && n == avail);
        emit_data_segment(snd_nxt_, n, fin_now);
        if (retransmission) ++stats_.retransmits;
        snd_nxt_ += n;
        if (fin_now) {
            if (!fin_sent_) {
                fin_sent_ = true;
                fin_seq_ = snd_nxt_;
            }
            snd_nxt_ += 1;
        }
        snd_max_ = util::max(snd_max_, snd_nxt_);
        arm_retransmit_timer();
    }

    send_fin_if_ready();
}

void TcpConnection::send_fin_if_ready() {
    Seq32 data_end = snd_.una() + static_cast<std::uint32_t>(snd_.size());
    if (snd_nxt_ < data_end) return;  // data still unsent
    if (fin_sent_) {
        // Retransmit the FIN only if SND.NXT was rolled back onto it.
        if (snd_nxt_ != fin_seq_) return;
        ++stats_.retransmits;
    } else if (!fin_queued_) {
        return;
    }

    net::TcpSegment seg;
    seg.seq = snd_nxt_;
    seg.flags.fin = true;
    seg.flags.ack = true;
    seg.ack = ack_seq();
    if (!fin_sent_) {
        fin_sent_ = true;
        fin_seq_ = snd_nxt_;
    }
    snd_nxt_ += 1;
    snd_max_ = util::max(snd_max_, snd_nxt_);
    emit(std::move(seg));
    arm_retransmit_timer();
}

void TcpConnection::emit_data_segment(Seq32 seq, std::size_t len, bool fin) {
    net::TcpSegment seg;
    seg.seq = seq;
    seg.flags.ack = true;
    seg.ack = ack_seq();
    seg.flags.fin = fin;
    seg.payload.resize(len);
    std::size_t copied = snd_.copy_from(seq, seg.payload);
    (void)copied;
    seg.flags.psh = len < config_.mss || seq + static_cast<std::uint32_t>(len) ==
                                             snd_.una() + static_cast<std::uint32_t>(snd_.size());

    if (!rtt_pending_ && seq >= snd_max_) {  // Karn: never sample retransmits
        rtt_pending_ = true;
        rtt_seq_ = seq + static_cast<std::uint32_t>(len) + (fin ? 1 : 0);
        rtt_sent_at_ = stack_.sim().now();
    }
    stats_.bytes_sent += len;
    emit(std::move(seg));
}

void TcpConnection::send_syn(bool with_ack) {
    net::TcpSegment seg;
    seg.seq = iss_;
    seg.flags.syn = true;
    seg.flags.ack = with_ack;
    if (with_ack) seg.ack = rcv_.rcv_nxt();
    seg.mss = config_.mss;
    snd_nxt_ = iss_ + 1;
    snd_max_ = util::max(snd_max_, snd_nxt_);
    // Karn's rule: only sample the first transmission of the SYN.
    if (!rtt_pending_ && consecutive_retransmits_ == 0) {
        rtt_pending_ = true;
        rtt_seq_ = snd_nxt_;
        rtt_sent_at_ = stack_.sim().now();
    }
    emit(std::move(seg));
    arm_retransmit_timer();
}

void TcpConnection::send_ack_now() {
    if (delack_timer_ != sim::kInvalidEventId) {
        stack_.sim().cancel(delack_timer_);
        delack_timer_ = sim::kInvalidEventId;
    }
    unacked_segments_ = 0;

    net::TcpSegment seg;
    seg.seq = snd_nxt_;
    seg.flags.ack = true;
    seg.ack = ack_seq();
    ++stats_.pure_acks_out;
    emit(std::move(seg));
}

void TcpConnection::schedule_delayed_ack() {
    // Coalesce: while armed, the deadline (first unacked segment + timeout)
    // is by construction unchanged, so a second in-order segment must not
    // cancel and reschedule — it either rides the armed timer or trips the
    // 2-segment ack in process_payload. Pinned by DelayedAckCoalescing.
    if (delack_timer_ != sim::kInvalidEventId) return;
    auto self = weak_from_this();
    delack_timer_ = stack_.sim().schedule_after(config_.delayed_ack_timeout, [self]() {
        auto conn = self.lock();
        if (!conn || !conn->stack_.powered() || conn->state_ == TcpState::kClosed) return;
        conn->delack_timer_ = sim::kInvalidEventId;
        conn->send_ack_now();
    });
}

void TcpConnection::send_rst(Seq32 seq) {
    net::TcpSegment seg;
    seg.seq = seq;
    seg.flags.rst = true;
    seg.flags.ack = true;
    seg.ack = ack_seq();
    emit(std::move(seg));
}

void TcpConnection::emit(net::TcpSegment&& seg) {
    seg.src_port = key_.local_port;
    seg.dst_port = key_.remote_port;
    seg.window = advertised_window();
    last_advertised_window_ = seg.window;
    ++stats_.segments_sent;
    if constexpr (check::kEnabled) auditor_.audit_emit(*this, seg, stack_.sim().now());
    stack_.tcp_output(key_, std::move(seg));
}

// ------------------------------------------------------------------- timers

void TcpConnection::arm_retransmit_timer() {
    // Hottest timer in the stack: try_send() re-arms once per emitted
    // segment and every ack that leaves data in flight re-arms again. Two
    // fast paths replace the old cancel+schedule pair: an unchanged
    // deadline (same event, same RTO — every segment after the first in a
    // burst) is a no-op, and a changed deadline moves the armed event in
    // place with rearm().
    const sim::TimePoint deadline = stack_.sim().now() + rtt_.rto();
    if (retransmit_timer_ != sim::kInvalidEventId) {
        if (deadline == retransmit_deadline_) return;
        if (stack_.sim().rearm(retransmit_timer_, deadline)) {
            retransmit_deadline_ = deadline;
            return;
        }
        retransmit_timer_ = sim::kInvalidEventId;  // stale id; fall through
    }
    auto self = weak_from_this();
    retransmit_timer_ = stack_.sim().schedule_at(deadline, [self]() {
        auto conn = self.lock();
        if (!conn || !conn->stack_.powered() || conn->state_ == TcpState::kClosed) return;
        conn->retransmit_timer_ = sim::kInvalidEventId;
        conn->on_retransmit_timeout();
    });
    retransmit_deadline_ = deadline;
}

void TcpConnection::cancel_retransmit_timer() {
    stack_.sim().cancel(retransmit_timer_);
    retransmit_timer_ = sim::kInvalidEventId;
}

void TcpConnection::on_retransmit_timeout() {
    ++stats_.timeouts;
    ++consecutive_retransmits_;

    if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
        if (consecutive_retransmits_ > config_.max_syn_retransmits) {
            finish("connection timed out (SYN)");
            return;
        }
        rtt_.backoff();
        rtt_pending_ = false;
        send_syn(/*with_ack=*/state_ == TcpState::kSynReceived);
        return;
    }

    if (flight_size() == 0 && !(fin_sent_ && !fin_fully_acked())) return;

    if (consecutive_retransmits_ > config_.max_retransmits) {
        finish("connection timed out (retransmission limit)");
        return;
    }

    cc_.on_timeout(flight_size());
    rtt_.backoff();
    rtt_pending_ = false;  // Karn: no sampling of retransmitted data
    dup_acks_ = 0;
    // Go-back-N: roll SND.NXT back to the cumulative ack and let the normal
    // send path stream the backlog under slow start (cwnd is now 1 MSS, so
    // exactly one segment goes out; incoming acks clock the rest).
    snd_nxt_ = snd_una_;
    if (state_ == TcpState::kFinWait1 || state_ == TcpState::kLastAck ||
        state_ == TcpState::kClosing) {
        // FIN retransmission path shares try_send/send_fin_if_ready.
        try_send();
    } else {
        try_send();
    }
    arm_retransmit_timer();
}

void TcpConnection::retransmit_head() {
    ++stats_.retransmits;
    rtt_pending_ = false;

    // All data acked, FIN outstanding: retransmit the FIN.
    if (fin_sent_ && snd_una_ == fin_seq_) {
        net::TcpSegment seg;
        seg.seq = fin_seq_;
        seg.flags.fin = true;
        seg.flags.ack = true;
        seg.ack = ack_seq();
        emit(std::move(seg));
        return;
    }

    Seq32 una = snd_.una();
    Seq32 sent_data_end = fin_sent_ ? fin_seq_ : snd_nxt_;
    if (sent_data_end <= una) return;
    std::uint32_t outstanding = sent_data_end - una;
    std::uint32_t n = std::min<std::uint32_t>(outstanding, config_.mss);
    bool fin = fin_sent_ && una + n == fin_seq_;
    emit_data_segment(una, n, fin);
    rtt_pending_ = false;  // Karn: never sample a retransmitted segment
}

sim::Duration TcpConnection::persist_delay() const {
    sim::Duration delay = config_.persist_min;
    for (int i = 0; i < persist_backoff_ && delay < config_.persist_max; ++i) delay *= 2;
    return std::min(delay, config_.persist_max);
}

void TcpConnection::arm_persist_timer() {
    if (persist_timer_ != sim::kInvalidEventId) return;
    auto self = weak_from_this();
    persist_timer_ = stack_.sim().schedule_after(persist_delay(), [self]() {
        auto conn = self.lock();
        if (!conn) return;
        if (!conn->stack_.powered() || conn->state_ == TcpState::kClosed) {
            conn->persist_timer_ = sim::kInvalidEventId;
            return;
        }
        // Not reset to kInvalidEventId here: on_persist_timeout() rearms
        // the firing event in place for the next probe.
        conn->on_persist_timeout();
    });
}

void TcpConnection::on_persist_timeout() {
    if (snd_wnd_ > 0) {
        persist_timer_ = sim::kInvalidEventId;  // window opened; probing over
        try_send();
        return;
    }
    // Window probe: one byte of new data beyond the advertised window,
    // without advancing SND.NXT (the peer acks with its current window).
    Seq32 data_end = snd_.una() + static_cast<std::uint32_t>(snd_.size());
    if (snd_nxt_ < data_end) {
        net::TcpSegment seg;
        seg.seq = snd_nxt_;
        seg.flags.ack = true;
        seg.ack = ack_seq();
        seg.payload.resize(1);
        snd_.copy_from(snd_nxt_, seg.payload);
        emit(std::move(seg));
    }
    ++persist_backoff_;
    // Same slot, same lambda, next backoff step: rearm() from inside the
    // firing callback keeps persist_timer_ valid with zero slot churn.
    if (!stack_.sim().rearm_after(persist_timer_, persist_delay())) {
        persist_timer_ = sim::kInvalidEventId;
        arm_persist_timer();
    }
}

void TcpConnection::enter_time_wait() {
    transition(TcpState::kTimeWait);
    cancel_retransmit_timer();
    const sim::TimePoint deadline = stack_.sim().now() + 2 * config_.msl;
    // Re-entry (a retransmitted FIN restarts 2MSL) moves the armed timer.
    if (time_wait_timer_ != sim::kInvalidEventId &&
        stack_.sim().rearm(time_wait_timer_, deadline)) {
        return;
    }
    auto self = weak_from_this();
    time_wait_timer_ = stack_.sim().schedule_at(deadline, [self]() {
        auto conn = self.lock();
        if (!conn || conn->state_ != TcpState::kTimeWait) return;
        conn->time_wait_timer_ = sim::kInvalidEventId;
        conn->finish("closed (time-wait expired)");
    });
}

// ---------------------------------------------------------------- lifecycle

bool TcpConnection::fin_fully_acked() const { return fin_sent_ && snd_una_ == fin_seq_ + 1; }

void TcpConnection::transition(TcpState to) {
    if constexpr (check::kEnabled) {
        auditor_.audit_transition(*this, state_, to, stack_.sim().now());
    }
    state_ = to;  // lint:allow state-funnel -- the funnel's own write
}

void TcpConnection::become_established() {
    transition(TcpState::kEstablished);
    fire(callbacks_.on_established);
}

void TcpConnection::finish(const std::string& reason) {
    if (state_ == TcpState::kClosed) return;
    transition(TcpState::kClosed);
    cancel_retransmit_timer();
    stack_.sim().cancel(delack_timer_);
    delack_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(persist_timer_);
    persist_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(time_wait_timer_);
    time_wait_timer_ = sim::kInvalidEventId;
    auto self = shared_from_this();  // keep alive through deregistration
    stack_.connection_closed(*this);
    fire(close_hook_);
    fire(callbacks_.on_closed, reason);
    detach_hooks();
}

void TcpConnection::detach_hooks() {
    callbacks_ = Callbacks{};
    close_hook_ = nullptr;
    rcv_advance_hook_ = nullptr;
    retention_ = nullptr;
}

} // namespace sttcp::tcp
