// Per-host TCP/IP protocol stack.
//
// Owns the ARP engine, IPv4 input/output (with optional forwarding for the
// gateway role), UDP sockets, TCP listeners and connections. Binds to one or
// more NICs. Two hooks make ST-TCP possible without forking the stack:
//
//   * tcp egress filter — the backup suppresses every outgoing TCP segment
//     (and ARP replies for the service IP) during failure-free operation
//     (paper §4.1 step 2, §4.2: "all replies from the backup server to the
//     client are dropped");
//   * tcp tap — the backup observes segments that are *not addressed to it*
//     (primary→client traffic flooded to it by the hub / multicast MAC /
//     mirror port) to detect tap gaps and verify primary behaviour.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/arp.hpp"
#include "net/ipv4.hpp"
#include "net/nic.hpp"
#include "net/udp.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_connection.hpp"
#include "tcp/tcp_types.hpp"

namespace sttcp::tcp {

class HostStack;

class UdpSocket {
public:
    using RxHandler = std::function<void(util::ByteView data, net::Ipv4Address src_ip,
                                         std::uint16_t src_port)>;

    UdpSocket(HostStack& stack, std::uint16_t port) : stack_(stack), port_(port) {}

    void set_rx_handler(RxHandler handler) { rx_ = std::move(handler); }
    [[nodiscard]] std::uint16_t port() const { return port_; }

    void send_to(net::Ipv4Address dst_ip, std::uint16_t dst_port, util::ByteView data);

    struct Stats {
        std::uint64_t datagrams_sent = 0;
        std::uint64_t datagrams_received = 0;
        std::uint64_t bytes_sent = 0;
        std::uint64_t bytes_received = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    friend class HostStack;
    HostStack& stack_;
    std::uint16_t port_;
    RxHandler rx_;
    Stats stats_;
};

class TcpListener {
public:
    using AcceptHandler = std::function<void(std::shared_ptr<TcpConnection>)>;
    // Runs on every new connection *before* the SYN is processed; ST-TCP
    // installs its per-connection hooks here.
    using ConnectionSetup = std::function<void(TcpConnection&)>;

    TcpListener(HostStack& stack, std::uint16_t port) : stack_(stack), port_(port) {}

    void set_accept_handler(AcceptHandler handler) { accept_ = std::move(handler); }
    void set_connection_setup(ConnectionSetup setup) { setup_ = std::move(setup); }
    [[nodiscard]] std::uint16_t port() const { return port_; }

    // Hands an externally constructed connection to the accept handler
    // (ST-TCP late-join shadows enter the application this way).
    void dispatch_accept(std::shared_ptr<TcpConnection> conn) {
        if (accept_) accept_(std::move(conn));
    }

private:
    friend class HostStack;
    HostStack& stack_;
    std::uint16_t port_;
    AcceptHandler accept_;
    ConnectionSetup setup_;
};

class HostStack {
public:
    HostStack(sim::Simulation& simulation, net::Node& node, TcpConfig tcp_config = {});
    ~HostStack();

    HostStack(const HostStack&) = delete;
    HostStack& operator=(const HostStack&) = delete;

    // ---- interface configuration ------------------------------------------
    // Binds a NIC with a primary address; returns the interface index.
    std::size_t add_interface(net::Nic& nic, net::Ipv4Address ip, int prefix_len);
    // Additional local IP on an existing interface — the paper's VNIC: the
    // virtual service IP (SVI) lives here on primary, backup and gateway.
    void add_ip_alias(std::size_t iface_index, net::Ipv4Address ip);
    void remove_ip_alias(net::Ipv4Address ip);
    void set_default_gateway(net::Ipv4Address gw) { default_gateway_ = gw; }
    void set_ip_forwarding(bool on) { ip_forwarding_ = on; }

    [[nodiscard]] net::ArpTable& arp_table() { return arp_table_; }
    [[nodiscard]] net::Node& node() { return node_; }
    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] const TcpConfig& tcp_config() const { return tcp_config_; }
    [[nodiscard]] bool powered() const { return node_.powered(); }
    [[nodiscard]] bool is_local_ip(net::Ipv4Address ip) const;

    // Announce (ip -> our MAC) to the whole segment; used on IP takeover.
    void send_gratuitous_arp(net::Ipv4Address ip);
    // While an IP is suppressed, the stack will not answer ARP requests for
    // it (the backup must not fight the primary over the service IP).
    void suppress_arp_for(net::Ipv4Address ip) { arp_suppressed_.insert(ip); }
    void unsuppress_arp_for(net::Ipv4Address ip) { arp_suppressed_.erase(ip); }

    // ---- TCP ----------------------------------------------------------------
    std::shared_ptr<TcpListener> tcp_listen(std::uint16_t port);
    std::shared_ptr<TcpConnection> tcp_connect(net::Ipv4Address remote_ip,
                                               std::uint16_t remote_port,
                                               std::optional<net::Ipv4Address> local_ip = {});
    [[nodiscard]] std::shared_ptr<TcpConnection> find_connection(const FlowKey& key) const;
    [[nodiscard]] std::vector<std::shared_ptr<TcpConnection>> connections() const;

    using TcpEgressFilter = std::function<bool(const net::TcpSegment&, net::Ipv4Address src,
                                               net::Ipv4Address dst)>;
    void set_tcp_egress_filter(TcpEgressFilter filter) { egress_filter_ = std::move(filter); }

    using TcpTap = std::function<void(const net::TcpSegment&, net::Ipv4Address src,
                                      net::Ipv4Address dst)>;
    void set_tcp_tap(TcpTap tap) { tcp_tap_ = std::move(tap); }

    // Called for TCP segments addressed to a local IP that match no
    // connection and no listener SYN, *before* the stack answers with RST.
    // Returning true claims the segment (the ST-TCP backup late-joins a
    // shadow for flows whose handshake its tap missed).
    using OrphanTcpHandler = std::function<bool(const net::TcpSegment&, net::Ipv4Address src,
                                                net::Ipv4Address dst)>;
    void set_orphan_tcp_handler(OrphanTcpHandler handler) {
        orphan_tcp_ = std::move(handler);
    }

    // Register an already-constructed connection (ST-TCP late-join shadows).
    void register_connection(std::shared_ptr<TcpConnection> conn);

    // Overrides initial-sequence-number generation (tests: wraparound
    // coverage and fully scripted handshakes). Default: random per RFC-ish.
    void set_isn_generator(std::function<util::Seq32()> gen) {
        isn_generator_ = std::move(gen);
    }

    // ---- UDP ----------------------------------------------------------------
    std::shared_ptr<UdpSocket> udp_bind(std::uint16_t port);

    // ---- internals used by protocol objects ---------------------------------
    void tcp_output(const FlowKey& key, net::TcpSegment&& seg);
    void udp_output(net::Ipv4Address src, net::Ipv4Address dst, net::UdpDatagram&& dgram);
    void connection_closed(TcpConnection& conn);
    [[nodiscard]] util::Seq32 generate_isn();
    [[nodiscard]] util::Logger& logger() { return sim_.logger(); }
    [[nodiscard]] const std::string& name() const { return node_.name(); }

    struct Stats {
        std::uint64_t ip_in = 0;
        std::uint64_t ip_out = 0;
        std::uint64_t ip_forwarded = 0;
        std::uint64_t ip_dropped_not_local = 0;
        std::uint64_t tcp_rst_sent = 0;
        std::uint64_t tcp_segments_suppressed = 0;
        std::uint64_t arp_requests_sent = 0;
        std::uint64_t arp_replies_sent = 0;
        std::uint64_t parse_errors = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    struct Interface {
        net::Nic* nic = nullptr;
        net::Ipv4Address ip;
        int prefix_len = 24;
        std::vector<net::Ipv4Address> aliases;
    };

    struct PendingPacket {
        net::Ipv4Packet packet;
        int attempts = 0;
    };

    void on_frame(std::size_t iface_index, const net::EthernetFrame& frame);
    void on_arp(std::size_t iface_index, const net::EthernetFrame& frame);
    void on_ip(std::size_t iface_index, const net::EthernetFrame& frame);
    void deliver_tcp(const net::Ipv4Packet& ip);
    void deliver_udp(const net::Ipv4Packet& ip);
    void forward_ip(net::Ipv4Packet packet);

    // Routing: picks (interface, next hop) for a destination.
    [[nodiscard]] std::optional<std::pair<std::size_t, net::Ipv4Address>> route(
        net::Ipv4Address dst) const;
    void ip_output(net::Ipv4Packet packet);
    void transmit_on(std::size_t iface_index, net::Ipv4Address next_hop, net::Ipv4Packet packet);
    void send_arp_request(std::size_t iface_index, net::Ipv4Address target, int attempt);
    void send_rst_for(const net::TcpSegment& seg, net::Ipv4Address src_ip,
                      net::Ipv4Address dst_ip);

    sim::Simulation& sim_;
    net::Node& node_;
    TcpConfig tcp_config_;

    std::vector<Interface> interfaces_;
    std::optional<net::Ipv4Address> default_gateway_;
    bool ip_forwarding_ = false;

    net::ArpTable arp_table_;
    std::set<net::Ipv4Address> arp_suppressed_;
    std::unordered_map<net::Ipv4Address, std::vector<PendingPacket>> arp_pending_;

    std::unordered_map<FlowKey, std::shared_ptr<TcpConnection>> connections_;
    // Connections that reached CLOSED this event. finish() runs deep inside
    // segment processing on the connection itself and detaches the hooks
    // that were keeping it alive, so the last reference is parked here and
    // dropped once the call stack has fully unwound.
    std::vector<std::shared_ptr<TcpConnection>> closed_conns_;
    sim::EventId closed_drain_ = sim::kInvalidEventId;
    std::unordered_map<std::uint16_t, std::weak_ptr<TcpListener>> listeners_;
    std::unordered_map<std::uint16_t, std::weak_ptr<UdpSocket>> udp_sockets_;
    std::uint16_t next_ephemeral_port_ = 49152;
    std::uint16_t next_ip_id_ = 1;

    TcpEgressFilter egress_filter_;
    TcpTap tcp_tap_;
    OrphanTcpHandler orphan_tcp_;
    std::function<util::Seq32()> isn_generator_;

    Stats stats_;
};

} // namespace sttcp::tcp
