// RTT estimation and retransmission timeout (Jacobson/Karels, RFC 6298)
// with Linux-style clamping.
//
// The paper's failover analysis (§6.2) hinges on this component: "In Linux,
// the RTO is computed using the round trip time (RTT) and is increased by a
// factor of two with every retransmission. The lower and upper bound for the
// RTO in Linux are 200 ms and 2 min respectively." The client's RTO backoff
// during the outage is what stretches failover beyond the detection time.
#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace sttcp::tcp {

class RttEstimator {
public:
    RttEstimator(sim::Duration initial_rto, sim::Duration min_rto, sim::Duration max_rto)
        : initial_rto_(initial_rto), min_rto_(min_rto), max_rto_(max_rto) {}

    // Feeds one RTT measurement (Karn's rule: callers must not sample
    // retransmitted segments).
    void sample(sim::Duration rtt) {
        using std::chrono::duration_cast;
        if (!has_sample_) {
            srtt_ = rtt;
            rttvar_ = rtt / 2;
            has_sample_ = true;
        } else {
            sim::Duration err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
            rttvar_ = (3 * rttvar_ + err) / 4;
            srtt_ = (7 * srtt_ + rtt) / 8;
        }
        backoff_ = 0;
    }

    // Doubles the RTO (called on each retransmission timeout).
    void backoff() { backoff_ = std::min(backoff_ + 1, 20); }
    void reset_backoff() { backoff_ = 0; }
    [[nodiscard]] int backoff_count() const { return backoff_; }

    [[nodiscard]] sim::Duration rto() const {
        sim::Duration base = has_sample_ ? srtt_ + std::max(granularity_, 4 * rttvar_)
                                         : initial_rto_;
        base = std::clamp(base, min_rto_, max_rto_);
        for (int i = 0; i < backoff_; ++i) {
            base *= 2;
            if (base >= max_rto_) return max_rto_;
        }
        return std::clamp(base, min_rto_, max_rto_);
    }

    [[nodiscard]] sim::Duration srtt() const { return srtt_; }
    [[nodiscard]] sim::Duration rttvar() const { return rttvar_; }
    [[nodiscard]] bool has_sample() const { return has_sample_; }

private:
    sim::Duration initial_rto_;
    sim::Duration min_rto_;
    sim::Duration max_rto_;
    sim::Duration granularity_ = sim::milliseconds{10};
    sim::Duration srtt_{};
    sim::Duration rttvar_{};
    bool has_sample_ = false;
    int backoff_ = 0;
};

} // namespace sttcp::tcp
