// Compile-time TCP state-transition specification.
//
// The paper's correctness argument (§4.1 handshake synchronization, §4.4
// takeover) requires the backup's TCP state machine to track the primary's
// exactly; that only holds if every state change the stack can make is an
// edge of a declared specification. This header IS that specification: a
// constexpr adjacency matrix over TcpState built from the RFC 793 §3.2
// transition diagram plus the three ST-TCP extensions, checked three ways:
//
//   * compile time — the static_asserts below pin the load-bearing legal
//     and illegal edges, so editing the matrix by accident fails the build;
//   * runtime — TcpConnection::transition() is the single sanctioned write
//     to state_ and reports `tcp.state.legal_transition` through the
//     invariant auditor for any off-matrix move;
//   * statically — tools/staticcheck's `state-funnel` rule forbids any
//     direct `state_ =` write outside the funnel, so the matrix cannot be
//     bypassed by new code.
//
// The full edge catalogue with per-edge references lives in DESIGN.md §10.
#pragma once

#include <array>
#include <cstddef>

#include "tcp/tcp_types.hpp"

namespace sttcp::tcp {

inline constexpr std::size_t kTcpStateCount = 11;

namespace detail {

constexpr std::size_t idx(TcpState s) { return static_cast<std::size_t>(s); }

using TransitionMatrix = std::array<std::array<bool, kTcpStateCount>, kTcpStateCount>;

constexpr TransitionMatrix make_transition_matrix() {
    TransitionMatrix m{};
    auto edge = [&m](TcpState from, TcpState to) { m[idx(from)][idx(to)] = true; };
    using enum TcpState;

    // ---- opens (RFC 793 p.23 diagram, top half) --------------------------
    edge(kClosed, kListen);        // passive OPEN (spec edge; this stack
                                   // creates connections per-SYN instead)
    edge(kClosed, kSynSent);       // active OPEN: send SYN
    edge(kClosed, kSynReceived);   // rcv SYN from a listener's demux: send
                                   // SYN/ACK (open_passive; RFC routes this
                                   // via LISTEN, the demux shortcut does not)
    edge(kClosed, kEstablished);   // ST-TCP §4.1 late join: open_shadow_join
                                   // builds an ESTABLISHED shadow from the
                                   // primary's anchors when the tap missed
                                   // the whole handshake
    edge(kListen, kSynSent);       // SEND on a listening socket
    edge(kListen, kSynReceived);   // rcv SYN: send SYN/ACK

    // ---- handshake -------------------------------------------------------
    edge(kSynSent, kSynReceived);  // rcv SYN (simultaneous open): send ACK
    edge(kSynSent, kEstablished);  // rcv SYN/ACK: send ACK
    edge(kSynReceived, kEstablished);  // rcv ACK of SYN/ACK; also ST-TCP
                                       // §4.1 ISN adoption and the anchored
                                       // shadow's tapped handshake completion
    edge(kSynReceived, kFinWait1);     // CLOSE before the handshake finishes
    edge(kSynReceived, kCloseWait);    // FIN consumed while still SYN_RCVD
                                       // (defensive; see DESIGN.md §10)

    // ---- established-side closes (RFC 793 p.23 diagram, bottom half) -----
    edge(kEstablished, kFinWait1);   // CLOSE: send FIN
    edge(kEstablished, kCloseWait);  // rcv FIN: send ACK
    edge(kFinWait1, kFinWait2);      // rcv ACK of FIN
    edge(kFinWait1, kClosing);       // rcv FIN (simultaneous close)
    edge(kFinWait1, kTimeWait);      // rcv FIN + ACK of FIN in one step
    edge(kFinWait2, kTimeWait);      // rcv FIN: send ACK
    edge(kClosing, kTimeWait);       // rcv ACK of FIN
    edge(kCloseWait, kLastAck);      // CLOSE: send FIN
    edge(kTimeWait, kTimeWait);      // rcv retransmitted FIN: re-ACK and
                                     // restart the 2MSL timer (RFC 793 p.73)

    // ---- abortive exits: RST / abort() / retransmission give-up ----------
    // Every non-CLOSED state may fall directly to CLOSED (finish()).
    // CLOSED itself is absorbing: finish() is idempotent and never re-fires.
    for (std::size_t from = 0; from < kTcpStateCount; ++from) {
        if (from != idx(kClosed)) m[from][idx(kClosed)] = true;
    }
    return m;
}

inline constexpr TransitionMatrix kLegalTransitions = make_transition_matrix();

} // namespace detail

// True iff `from -> to` is an edge of the RFC 793 / ST-TCP specification.
[[nodiscard]] constexpr bool is_legal_transition(TcpState from, TcpState to) {
    return detail::kLegalTransitions[detail::idx(from)][detail::idx(to)];
}

// ---- compile-time pins on the load-bearing edges --------------------------
// Handshake order cannot be skipped (the acceptance example: a listener may
// only reach ESTABLISHED through SYN_RCVD).
static_assert(!is_legal_transition(TcpState::kListen, TcpState::kEstablished));
static_assert(is_legal_transition(TcpState::kListen, TcpState::kSynReceived));
static_assert(is_legal_transition(TcpState::kSynReceived, TcpState::kEstablished));
// The ST-TCP late-join shadow is the one sanctioned handshake bypass (§4.1).
static_assert(is_legal_transition(TcpState::kClosed, TcpState::kEstablished));
// Teardown cannot run backwards or skip the FIN exchange.
static_assert(!is_legal_transition(TcpState::kEstablished, TcpState::kTimeWait));
static_assert(!is_legal_transition(TcpState::kFinWait2, TcpState::kFinWait1));
static_assert(!is_legal_transition(TcpState::kCloseWait, TcpState::kEstablished));
static_assert(!is_legal_transition(TcpState::kTimeWait, TcpState::kEstablished));
// CLOSED is absorbing, and reachable from everywhere else (abort/RST).
static_assert(!is_legal_transition(TcpState::kClosed, TcpState::kClosed));
static_assert([] {
    for (std::size_t s = 0; s < kTcpStateCount; ++s) {
        if (s == detail::idx(TcpState::kClosed)) continue;
        if (!detail::kLegalTransitions[s][detail::idx(TcpState::kClosed)]) return false;
    }
    return true;
}());
// TIME_WAIT restart is the only legal self-loop (retransmitted-FIN re-ACK).
static_assert([] {
    for (std::size_t s = 0; s < kTcpStateCount; ++s) {
        if (detail::kLegalTransitions[s][s] && s != detail::idx(TcpState::kTimeWait))
            return false;
    }
    return true;
}());

} // namespace sttcp::tcp
