#include "util/logging.hpp"

#include <iostream>

namespace sttcp::util {

std::string_view to_string(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

void Logger::log(LogLevel level, std::string_view component, std::string_view msg) {
    if (!enabled(level)) return;
    if (sink_) {
        sink_(level, component, msg);
        return;
    }
    std::cerr << '[' << to_string(level) << "] " << component << ": " << msg << '\n';
}

} // namespace sttcp::util
