#include "util/seq32.hpp"

#include <ostream>

namespace sttcp::util {

std::ostream& operator<<(std::ostream& os, Seq32 s) { return os << s.raw(); }

} // namespace sttcp::util
