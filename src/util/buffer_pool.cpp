#include "util/buffer_pool.hpp"

namespace sttcp::util {

BufferPool& BufferPool::instance() {
    thread_local BufferPool pool;
    return pool;
}

Bytes BufferPool::take(std::size_t reserve_hint) {
    ++stats_.takes;
    Bytes out;
    if (!free_.empty()) {
        out = std::move(free_.back());
        free_.pop_back();
        out.clear();
        ++stats_.reuses;
    }
    if (out.capacity() < reserve_hint) out.reserve(reserve_hint);
    return out;
}

void BufferPool::give(Bytes&& buffer) {
    ++stats_.gives;
    if (buffer.capacity() == 0 || buffer.capacity() > kMaxCapacity ||
        free_.size() >= kMaxFree) {
        ++stats_.dropped;
        Bytes discard = std::move(buffer);  // freed here
        return;
    }
    free_.push_back(std::move(buffer));
}

void BufferPool::drain() {
    free_.clear();
    free_.shrink_to_fit();
}

} // namespace sttcp::util
