// Big-endian (network byte order) wire encoding helpers.
//
// All packet formats in src/net serialize through these, so byte order is
// decided in one place and the parsers can be fuzz-tested independently of
// the protocol logic.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace sttcp::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

// Appends fixed-width big-endian integers to a growing byte vector.
class WireWriter {
public:
    explicit WireWriter(Bytes& out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }
    void u16(std::uint16_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }
    void u32(std::uint32_t v) {
        out_.push_back(static_cast<std::uint8_t>(v >> 24));
        out_.push_back(static_cast<std::uint8_t>(v >> 16));
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }
    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v >> 32));
        u32(static_cast<std::uint32_t>(v));
    }
    void bytes(ByteView v) { out_.insert(out_.end(), v.begin(), v.end()); }
    void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

    [[nodiscard]] std::size_t size() const { return out_.size(); }

    // Patches a previously written big-endian u16 (e.g. a checksum field).
    void patch_u16(std::size_t offset, std::uint16_t v) {
        out_.at(offset) = static_cast<std::uint8_t>(v >> 8);
        out_.at(offset + 1) = static_cast<std::uint8_t>(v);
    }

private:
    Bytes& out_;
};

// Thrown by WireReader when a packet is shorter than its header claims.
class WireError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

// Consumes fixed-width big-endian integers from a byte view; throws
// WireError on underrun so malformed packets are rejected, never misread.
class WireReader {
public:
    explicit WireReader(ByteView in) : in_(in) {}

    [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
    [[nodiscard]] std::uint16_t u16() {
        auto b = take(2);
        return static_cast<std::uint16_t>(b[0] << 8 | b[1]);
    }
    [[nodiscard]] std::uint32_t u32() {
        auto b = take(4);
        return static_cast<std::uint32_t>(b[0]) << 24 | static_cast<std::uint32_t>(b[1]) << 16 |
               static_cast<std::uint32_t>(b[2]) << 8 | static_cast<std::uint32_t>(b[3]);
    }
    [[nodiscard]] std::uint64_t u64() {
        std::uint64_t hi = u32();
        return hi << 32 | u32();
    }
    [[nodiscard]] ByteView bytes(std::size_t n) { return take(n); }
    void skip(std::size_t n) { (void)take(n); }

    [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
    [[nodiscard]] ByteView rest() { return take(remaining()); }

private:
    ByteView take(std::size_t n) {
        if (remaining() < n) throw WireError{"packet truncated"};
        ByteView v = in_.subspan(pos_, n);
        pos_ += n;
        return v;
    }

    ByteView in_;
    std::size_t pos_ = 0;
};

// RFC 1071 Internet checksum over a byte sequence, with incremental folding.
class InternetChecksum {
public:
    void add(ByteView data) {
        std::size_t i = 0;
        if (odd_) {
            if (data.empty()) return;
            sum_ += data[0];
            odd_ = false;
            i = 1;
        }
        for (; i + 1 < data.size(); i += 2)
            sum_ += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
        if (i < data.size()) {
            sum_ += static_cast<std::uint32_t>(data[i]) << 8;
            odd_ = true;
        }
    }
    void add_u16(std::uint16_t v) {
        std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
        add(ByteView{b, 2});
    }
    void add_u32(std::uint32_t v) {
        add_u16(static_cast<std::uint16_t>(v >> 16));
        add_u16(static_cast<std::uint16_t>(v));
    }

    [[nodiscard]] std::uint16_t finish() const {
        std::uint64_t s = sum_;
        while (s >> 16) s = (s & 0xffff) + (s >> 16);
        return static_cast<std::uint16_t>(~s);
    }

private:
    std::uint64_t sum_ = 0;
    bool odd_ = false;
};

} // namespace sttcp::util
