// Set of disjoint half-open intervals over 64-bit logical stream offsets.
//
// The TCP receive path maps 32-bit wrapping sequence numbers onto a 64-bit
// unwrapped stream offset (see tcp/receive_buffer.hpp) and records which
// ranges of the stream have arrived; this container tracks those ranges and
// answers "how far is the stream contiguous from offset X" — which is
// exactly NextByteExpected. The ST-TCP backup reuses it to detect tap gaps.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace sttcp::util {

class IntervalSet {
public:
    struct Interval {
        std::uint64_t begin = 0;
        std::uint64_t end = 0;  // half-open
        friend bool operator==(const Interval&, const Interval&) = default;
    };

    // Inserts [begin, end), coalescing with any overlapping/adjacent runs.
    void insert(std::uint64_t begin, std::uint64_t end) {
        if (begin >= end) return;
        // Find the first interval whose end >= begin (candidates to merge).
        auto it = map_.lower_bound(begin);
        if (it != map_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= begin) it = prev;
        }
        while (it != map_.end() && it->first <= end) {
            begin = std::min(begin, it->first);
            end = std::max(end, it->second);
            it = map_.erase(it);
        }
        map_.emplace(begin, end);
    }

    // Removes everything below `offset` (bytes delivered to the application).
    void erase_below(std::uint64_t offset) {
        auto it = map_.begin();
        while (it != map_.end() && it->second <= offset) it = map_.erase(it);
        if (it != map_.end() && it->first < offset) {
            std::uint64_t end = it->second;
            map_.erase(it);
            map_.emplace(offset, end);
        }
    }

    [[nodiscard]] bool contains(std::uint64_t offset) const {
        auto it = map_.upper_bound(offset);
        if (it == map_.begin()) return false;
        --it;
        return offset >= it->first && offset < it->second;
    }

    // Length of the contiguous run starting exactly at `offset` (0 if absent).
    [[nodiscard]] std::uint64_t contiguous_from(std::uint64_t offset) const {
        auto it = map_.upper_bound(offset);
        if (it == map_.begin()) return 0;
        --it;
        if (offset < it->first || offset >= it->second) return 0;
        return it->second - offset;
    }

    // Gaps inside [begin, end) — ranges not covered by any interval.
    [[nodiscard]] std::vector<Interval> gaps(std::uint64_t begin, std::uint64_t end) const {
        std::vector<Interval> out;
        std::uint64_t cursor = begin;
        for (auto it = map_.upper_bound(begin); cursor < end;) {
            if (it != map_.begin()) {
                auto prev = std::prev(it);
                if (prev->second > cursor) cursor = prev->second;
            }
            if (cursor >= end) break;
            std::uint64_t gap_end = (it == map_.end()) ? end : std::min(it->first, end);
            if (cursor < gap_end) out.push_back({cursor, gap_end});
            if (it == map_.end()) break;
            cursor = it->second;
            ++it;
        }
        return out;
    }

    [[nodiscard]] std::vector<Interval> intervals() const {
        std::vector<Interval> out;
        out.reserve(map_.size());
        for (auto& [b, e] : map_) out.push_back({b, e});
        return out;
    }

    [[nodiscard]] bool empty() const { return map_.empty(); }
    [[nodiscard]] std::size_t count() const { return map_.size(); }
    void clear() { map_.clear(); }

private:
    std::map<std::uint64_t, std::uint64_t> map_;  // begin -> end
};

} // namespace sttcp::util
