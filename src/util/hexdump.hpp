// Hex formatting helpers for trace output and test diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace sttcp::util {

// "de ad be ef ..." — at most max_bytes, with an ellipsis if truncated.
[[nodiscard]] std::string hexdump(std::span<const std::uint8_t> data, std::size_t max_bytes = 64);

} // namespace sttcp::util
