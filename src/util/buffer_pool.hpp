// Free-list recycler for serialization buffers.
//
// Every frame the simulator moves is serialized into a util::Bytes vector;
// at millions of frames per host-second the malloc/free pair per buffer is
// the dominant cost of the wire codecs. The pool keeps a bounded free list
// of retired vectors and hands their capacity back to the next serialize()
// call, so the steady-state datapath performs no heap allocation.
//
// The pool is thread_local (one per simulation thread): the simulator is
// single-threaded by design, and a thread-local list keeps take()/give()
// free of synchronization.
#pragma once

#include <cstdint>

#include "util/wire.hpp"

namespace sttcp::util {

class BufferPool {
public:
    // Retired buffers beyond this many, or larger than this capacity, are
    // simply freed: the pool must never become a memory leak shaped like a
    // cache. 64 KiB covers every frame the MTU admits with a wide margin.
    static constexpr std::size_t kMaxFree = 64;
    static constexpr std::size_t kMaxCapacity = 64 * 1024;

    [[nodiscard]] static BufferPool& instance();

    // Returns an empty vector with capacity >= reserve_hint, reusing a
    // retired buffer when one is available.
    [[nodiscard]] Bytes take(std::size_t reserve_hint);

    // Retires a buffer, keeping its capacity for a future take().
    void give(Bytes&& buffer);

    struct Stats {
        std::uint64_t takes = 0;
        std::uint64_t reuses = 0;   // takes served from the free list
        std::uint64_t gives = 0;
        std::uint64_t dropped = 0;  // gives rejected (full list / oversized)
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] std::size_t free_count() const { return free_.size(); }

    // Frees everything held by the pool (tests and leak checkers).
    void drain();

private:
    std::vector<Bytes> free_;
    Stats stats_;
};

} // namespace sttcp::util
