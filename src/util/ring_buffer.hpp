// Fixed-capacity byte ring buffer.
//
// Backs the TCP send and receive buffers. Capacity is set at construction
// (TCP never grows a socket buffer mid-connection in our stack; ST-TCP's
// "doubled" receive buffer is expressed as a second RingBuffer, see
// sttcp/retention.hpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace sttcp::util {

class RingBuffer {
public:
    explicit RingBuffer(std::size_t capacity) : buf_(capacity) { assert(capacity > 0); }

    [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] std::size_t free_space() const { return capacity() - size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] bool full() const { return size_ == capacity(); }

    // Appends up to data.size() bytes; returns the number actually written
    // (limited by free space).
    std::size_t write(std::span<const std::uint8_t> data) {
        std::size_t n = std::min(data.size(), free_space());
        for (std::size_t i = 0; i < n; ++i) buf_[(head_ + size_ + i) % capacity()] = data[i];
        size_ += n;
        return n;
    }

    // Copies up to out.size() bytes from the front without consuming them;
    // returns the number copied.
    std::size_t peek(std::span<std::uint8_t> out, std::size_t offset = 0) const {
        if (offset >= size_) return 0;
        std::size_t n = std::min(out.size(), size_ - offset);
        for (std::size_t i = 0; i < n; ++i) out[i] = buf_[(head_ + offset + i) % capacity()];
        return n;
    }

    // Consumes up to n bytes from the front; returns the number consumed.
    std::size_t consume(std::size_t n) {
        n = std::min(n, size_);
        head_ = (head_ + n) % capacity();
        size_ -= n;
        return n;
    }

    // Reads (copies then consumes) up to out.size() bytes.
    std::size_t read(std::span<std::uint8_t> out) {
        std::size_t n = peek(out);
        consume(n);
        return n;
    }

    // Overwrites bytes at a logical offset past the front (used by the TCP
    // receive buffer to place out-of-order segments). The region must lie
    // within [0, capacity); bytes between size() and offset+data.size() are
    // not made readable until commit() extends size.
    void write_at(std::size_t offset, std::span<const std::uint8_t> data) {
        assert(offset + data.size() <= capacity());
        for (std::size_t i = 0; i < data.size(); ++i)
            buf_[(head_ + offset + i) % capacity()] = data[i];
    }

    // Extends the readable size to cover bytes placed with write_at.
    void commit(std::size_t new_size) {
        assert(new_size <= capacity());
        assert(new_size >= size_);
        size_ = new_size;
    }

    void clear() {
        head_ = 0;
        size_ = 0;
    }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t head_ = 0;  // index of logical front
    std::size_t size_ = 0;  // readable bytes
};

} // namespace sttcp::util
