// Immutable, ref-counted payload buffer: the zero-copy unit of the frame
// datapath.
//
// A frame entering the hub is repeated out of every other port; before this
// type existed each repeat copied the payload vector. SharedPayload lets
// every copy of an EthernetFrame alias one allocation: copying a payload is
// a refcount bump, reading it is a ByteView, and the buffer returns to the
// BufferPool when the last reference drops. Payloads are immutable once
// attached to a frame ("immutable after send"); mutable_bytes() is the
// copy-on-write escape hatch for the rare path that must edit in place.
//
// Refcounts are plain integers: the simulator is single-threaded and the
// nodes live in a thread_local free list alongside the BufferPool.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <type_traits>

#include "util/buffer_pool.hpp"
#include "util/wire.hpp"

namespace sttcp::util {

class SharedPayload {
public:
    SharedPayload() = default;

    // Adopts the vector (its capacity later returns to the BufferPool).
    // Implicit on purpose: `frame.payload = packet.serialize()` is the
    // canonical producer. The lvalue overload copies through the pool.
    SharedPayload(Bytes&& bytes);
    SharedPayload(const Bytes& bytes) : SharedPayload(ByteView{bytes}) {}
    SharedPayload(std::initializer_list<std::uint8_t> init);
    explicit SharedPayload(ByteView data);

    SharedPayload(const SharedPayload& other) noexcept : node_(other.node_) {
        if (node_) ++node_->refs;
    }
    SharedPayload(SharedPayload&& other) noexcept : node_(other.node_) {
        other.node_ = nullptr;
    }
    SharedPayload& operator=(const SharedPayload& other) noexcept {
        SharedPayload tmp{other};
        swap(tmp);
        return *this;
    }
    SharedPayload& operator=(SharedPayload&& other) noexcept {
        swap(other);
        return *this;
    }
    ~SharedPayload() { reset(); }

    [[nodiscard]] static SharedPayload copy_of(ByteView data) { return SharedPayload{data}; }

    [[nodiscard]] ByteView view() const {
        return node_ ? ByteView{node_->bytes} : ByteView{};
    }
    operator ByteView() const { return view(); }  // NOLINT(google-explicit-constructor)

    [[nodiscard]] const std::uint8_t* data() const { return view().data(); }
    [[nodiscard]] std::size_t size() const { return node_ ? node_->bytes.size() : 0; }
    [[nodiscard]] bool empty() const { return size() == 0; }
    [[nodiscard]] ByteView::iterator begin() const { return view().begin(); }
    [[nodiscard]] ByteView::iterator end() const { return view().end(); }

    void assign(std::size_t n, std::uint8_t value);
    template <typename It>
        requires(!std::is_integral_v<It>)
    void assign(It first, It last) {
        Bytes b = BufferPool::instance().take(0);
        b.assign(first, last);
        *this = SharedPayload{std::move(b)};
    }

    // Copy-on-write: exclusive access to the bytes. If the buffer is shared
    // the contents are copied first, so other frame copies never observe the
    // edit. For test/diagnostic paths, not the datapath.
    [[nodiscard]] Bytes& mutable_bytes();

    void reset();

    // Number of payloads aliasing this buffer (0 for the empty payload).
    [[nodiscard]] std::size_t use_count() const { return node_ ? node_->refs : 0; }

    void swap(SharedPayload& other) noexcept { std::swap(node_, other.node_); }

    friend bool operator==(const SharedPayload& a, const SharedPayload& b) {
        ByteView va = a.view(), vb = b.view();
        return va.size() == vb.size() && std::equal(va.begin(), va.end(), vb.begin());
    }
    friend bool operator==(const SharedPayload& a, const Bytes& b) {
        ByteView va = a.view();
        return va.size() == b.size() && std::equal(va.begin(), va.end(), b.begin());
    }

private:
    struct Node {
        std::size_t refs = 0;
        Bytes bytes;
    };

    [[nodiscard]] static Node* acquire_node(Bytes&& bytes);
    static void release_node(Node* node);
    [[nodiscard]] static std::vector<Node*>& node_pool();

    Node* node_ = nullptr;
};

std::ostream& operator<<(std::ostream& os, const SharedPayload& p);

} // namespace sttcp::util
