// 32-bit TCP sequence-number arithmetic with wraparound (RFC 793 / RFC 1982).
//
// TCP sequence numbers live on a mod-2^32 circle; ordinary integer comparison
// is wrong once a connection wraps (a 100 MB transfer wraps 0 times, but a
// long-lived connection will). Every comparison in the TCP and ST-TCP layers
// goes through this type so wraparound is handled in exactly one place.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>

namespace sttcp::util {

class Seq32 {
public:
    constexpr Seq32() = default;
    constexpr explicit Seq32(std::uint32_t raw) : raw_(raw) {}

    [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }

    // Serial-number arithmetic: a < b iff the signed distance from a to b is
    // positive. Distances of exactly 2^31 are ambiguous; TCP windows are far
    // smaller than 2^31 so the ambiguity never arises in practice.
    [[nodiscard]] friend constexpr bool operator==(Seq32 a, Seq32 b) = default;
    [[nodiscard]] friend constexpr bool operator<(Seq32 a, Seq32 b) {
        return static_cast<std::int32_t>(b.raw_ - a.raw_) > 0;
    }
    [[nodiscard]] friend constexpr bool operator>(Seq32 a, Seq32 b) { return b < a; }
    [[nodiscard]] friend constexpr bool operator<=(Seq32 a, Seq32 b) { return !(b < a); }
    [[nodiscard]] friend constexpr bool operator>=(Seq32 a, Seq32 b) { return !(a < b); }

    friend constexpr Seq32 operator+(Seq32 a, std::uint32_t n) { return Seq32{a.raw_ + n}; }
    friend constexpr Seq32 operator-(Seq32 a, std::uint32_t n) { return Seq32{a.raw_ - n}; }
    constexpr Seq32& operator+=(std::uint32_t n) { raw_ += n; return *this; }
    constexpr Seq32& operator-=(std::uint32_t n) { raw_ -= n; return *this; }

    // Distance from b to a along the circle (a - b), as an unsigned count of
    // bytes. Caller asserts a >= b in serial order.
    [[nodiscard]] friend constexpr std::uint32_t operator-(Seq32 a, Seq32 b) {
        return a.raw_ - b.raw_;
    }

private:
    std::uint32_t raw_ = 0;
};

// Signed circular distance from `b` to `a`: positive when a is ahead of b in
// serial order, negative when behind. This is the ONLY sanctioned way to turn
// two sequence numbers into a signed offset; raw `a.raw() - b.raw()` casts
// scattered around the codebase are rejected by tools/lint.py.
[[nodiscard]] constexpr std::int32_t seq_delta(Seq32 a, Seq32 b) {
    return static_cast<std::int32_t>(a.raw() - b.raw());
}

// True iff seq lies in the half-open window [lo, lo+len).
[[nodiscard]] constexpr bool in_window(Seq32 seq, Seq32 lo, std::uint32_t len) {
    return (seq - lo) < len;
}

[[nodiscard]] constexpr Seq32 min(Seq32 a, Seq32 b) { return a < b ? a : b; }
[[nodiscard]] constexpr Seq32 max(Seq32 a, Seq32 b) { return a < b ? b : a; }

std::ostream& operator<<(std::ostream& os, Seq32 s);

} // namespace sttcp::util
