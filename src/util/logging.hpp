// Minimal leveled logger.
//
// The simulator is single-threaded by construction, so no synchronization is
// needed. Components log through a shared Logger owned by the Simulation so
// trace lines carry virtual timestamps (see sim/simulation.hpp).
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace sttcp::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level);

class Logger {
public:
    using Sink = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;

    void set_level(LogLevel level) { level_ = level; }
    [[nodiscard]] LogLevel level() const { return level_; }
    [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

    // Default sink writes to stderr; tests install capturing sinks.
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    void log(LogLevel level, std::string_view component, std::string_view msg);

private:
    LogLevel level_ = LogLevel::kWarn;
    Sink sink_;
};

// Builds the message lazily: the stream body only runs if the level is on.
#define STTCP_LOG(logger, level, component, body)                       \
    do {                                                                \
        if ((logger).enabled(level)) {                                  \
            std::ostringstream sttcp_log_os_;                           \
            sttcp_log_os_ << body;                                      \
            (logger).log((level), (component), sttcp_log_os_.str());    \
        }                                                               \
    } while (0)

} // namespace sttcp::util
