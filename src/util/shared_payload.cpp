#include "util/shared_payload.hpp"

#include <ostream>

namespace sttcp::util {

SharedPayload::SharedPayload(Bytes&& bytes) : node_(acquire_node(std::move(bytes))) {}

SharedPayload::SharedPayload(ByteView data) {
    if (data.empty()) return;
    Bytes b = BufferPool::instance().take(data.size());
    b.assign(data.begin(), data.end());
    node_ = acquire_node(std::move(b));
}

SharedPayload::SharedPayload(std::initializer_list<std::uint8_t> init)
    : SharedPayload(ByteView{init.begin(), init.size()}) {}

void SharedPayload::assign(std::size_t n, std::uint8_t value) {
    Bytes b = BufferPool::instance().take(n);
    b.assign(n, value);
    *this = SharedPayload{std::move(b)};
}

Bytes& SharedPayload::mutable_bytes() {
    if (!node_) {
        node_ = acquire_node(BufferPool::instance().take(0));
    } else if (node_->refs > 1) {
        Bytes copy = BufferPool::instance().take(node_->bytes.size());
        copy.assign(node_->bytes.begin(), node_->bytes.end());
        reset();
        node_ = acquire_node(std::move(copy));
    }
    return node_->bytes;
}

void SharedPayload::reset() {
    if (node_ && --node_->refs == 0) release_node(node_);
    node_ = nullptr;
}

// Node free list: nodes parked here hold no bytes (their vector was given
// back to the BufferPool), so reviving one costs two pointer moves. The
// wrapper destructor frees parked nodes at thread exit (they are raw
// pointers, so the vector alone would leak them).
std::vector<SharedPayload::Node*>& SharedPayload::node_pool() {
    struct Pool {
        std::vector<Node*> list;
        ~Pool() {
            for (Node* node : list) delete node;
        }
    };
    thread_local Pool pool;
    return pool.list;
}

SharedPayload::Node* SharedPayload::acquire_node(Bytes&& bytes) {
    auto& list = node_pool();
    Node* node;
    if (!list.empty()) {
        node = list.back();
        list.pop_back();
    } else {
        node = new Node;
    }
    node->refs = 1;
    node->bytes = std::move(bytes);
    return node;
}

void SharedPayload::release_node(Node* node) {
    BufferPool::instance().give(std::move(node->bytes));
    node->bytes = Bytes{};
    auto& list = node_pool();
    if (list.size() < BufferPool::kMaxFree) {
        list.push_back(node);
    } else {
        delete node;
    }
}

std::ostream& operator<<(std::ostream& os, const SharedPayload& p) {
    os << "SharedPayload{" << p.size() << " bytes}";
    return os;
}

} // namespace sttcp::util
