#include "sttcp/control_messages.hpp"

namespace sttcp::core {

namespace {
constexpr std::uint8_t kMagic = 0x5C;  // guards against stray datagrams
} // namespace

util::Bytes ControlMessage::serialize() const {
    util::Bytes out;
    out.reserve(24 + payload.size());
    util::WireWriter w{out};
    w.u8(kMagic);
    w.u8(static_cast<std::uint8_t>(type));
    w.u32(conn.server_ip.value());
    w.u16(conn.server_port);
    w.u32(conn.client_ip.value());
    w.u16(conn.client_port);
    w.u32(seq.raw());
    w.u32(seq_end.raw());
    w.u16(static_cast<std::uint16_t>(payload.size()));
    w.bytes(payload);
    return out;
}

std::optional<ControlMessage> ControlMessage::parse(util::ByteView raw) {
    try {
        util::WireReader r{raw};
        if (r.u8() != kMagic) return std::nullopt;
        ControlMessage m;
        m.type = static_cast<ControlType>(r.u8());
        if (m.type < ControlType::kHeartbeat || m.type > ControlType::kStateReply)
            return std::nullopt;
        m.conn.server_ip = net::Ipv4Address{r.u32()};
        m.conn.server_port = r.u16();
        m.conn.client_ip = net::Ipv4Address{r.u32()};
        m.conn.client_port = r.u16();
        m.seq = util::Seq32{r.u32()};
        m.seq_end = util::Seq32{r.u32()};
        std::uint16_t len = r.u16();
        if (r.remaining() < len) return std::nullopt;
        auto body = r.bytes(len);
        m.payload.assign(body.begin(), body.end());
        return m;
    } catch (const util::WireError&) {
        return std::nullopt;
    }
}

} // namespace sttcp::core
