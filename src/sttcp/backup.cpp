#include "sttcp/backup.hpp"

#include <algorithm>

#include "check/sttcp_auditor.hpp"

namespace sttcp::core {

namespace {
// Cap one missing-segment request to a sane burst; larger gaps are fetched
// incrementally as replies arrive and the gap re-detects.
constexpr std::uint32_t kMaxRequestSpan = 64 * 1024;
} // namespace

SttcpBackup::SttcpBackup(tcp::HostStack& stack, Options options)
    : stack_(stack), options_(std::move(options)) {
    current_primary_ = options_.members.at(0);

    // Bind the service IP but stay invisible: no ARP answers for it, and no
    // TCP segment sourced from it leaves this host.
    stack_.add_ip_alias(options_.iface_index, options_.service_ip);
    stack_.suppress_arp_for(options_.service_ip);
    stack_.set_tcp_egress_filter([this](const net::TcpSegment&, net::Ipv4Address src,
                                        net::Ipv4Address) {
        bool allowed = taken_over_ || src != options_.service_ip;
        if constexpr (check::kEnabled) {
            check::SttcpInvariantAuditor::audit_egress_decision(
                taken_over_, src == options_.service_ip, allowed, "backup egress filter",
                stack_.sim().now());
        }
        return allowed;
    });
    stack_.set_tcp_tap([this](const net::TcpSegment& seg, net::Ipv4Address src,
                              net::Ipv4Address dst) { on_tap(seg, src, dst); });
    stack_.set_orphan_tcp_handler([this](const net::TcpSegment& seg, net::Ipv4Address src,
                                         net::Ipv4Address dst) {
        return on_orphan_segment(seg, src, dst);
    });

    control_ = stack_.udp_bind(options_.config.control_port);
    control_->set_rx_handler(
        [this](util::ByteView data, net::Ipv4Address src, std::uint16_t src_port) {
            on_control(data, src, src_port);
        });

    // Monitor every member ranked above this node (the primary and any
    // more-senior backups); takeover requires all of them dead.
    for (std::size_t i = 0; i < options_.self_index; ++i) {
        Senior senior;
        senior.ip = options_.members.at(i);
        senior.detector = std::make_unique<FailureDetector>(
            stack_.sim(), options_.config.hb_interval, options_.config.hb_miss_threshold);
        senior.detector->set_alive_predicate([this]() { return stack_.powered(); });
        net::Ipv4Address ip = senior.ip;
        senior.detector->set_on_suspect([this, ip]() {
            if (!stack_.powered()) return;
            on_senior_suspected(ip);
        });
        seniors_.push_back(std::move(senior));
    }
}

std::shared_ptr<tcp::TcpListener> SttcpBackup::listen(std::uint16_t port) {
    auto listener = stack_.tcp_listen(port);
    listeners_[port] = listener;
    listener->set_connection_setup([this](tcp::TcpConnection& conn) {
        if (taken_over_) return;  // post-failover setup belongs to promoted_
        // Adopt the primary's ISN from the client's handshake ACK (§4.1);
        // the tapped primary SYN/ACK anchors exactly when available.
        conn.set_adopt_peer_seq(true);
        // Shadow semantics: peer acks may outrun our suppressed replica
        // (on_takeover clears this).
        conn.set_shadow_mode(true);
        ConnId id = conn_id_of(conn);
        conn.set_close_hook([this, id]() { conns_.erase(id); });
        Shadow shadow;
        shadow.conn = conn.shared_from_this();
        auto [it, _] = conns_.emplace(id, std::move(shadow));
        // Threshold-X ack strategy: check on every in-order advance (§4.3).
        it->second.conn->set_rcv_advance_hook([this, id]() {
            auto sit = conns_.find(id);
            if (sit != conns_.end()) maybe_ack(sit->second, /*force=*/false);
        });
    });
    return listener;
}

void SttcpBackup::start() {
    started_ = true;
    for (auto& s : seniors_) s.detector->start();
    schedule_heartbeat();
    schedule_sync();
}

void SttcpBackup::stop() {
    started_ = false;
    for (auto& s : seniors_) s.detector->stop();
    stack_.sim().cancel(hb_timer_);
    hb_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(sync_timer_);
    sync_timer_ = sim::kInvalidEventId;
}

SttcpBackup::Senior* SttcpBackup::find_senior(net::Ipv4Address ip) {
    for (auto& s : seniors_) {
        if (s.ip == ip) return &s;
    }
    return nullptr;
}

ConnId SttcpBackup::conn_id_of(const tcp::TcpConnection& conn) const {
    const tcp::FlowKey& key = conn.key();
    return ConnId{key.local_ip, key.local_port, key.remote_ip, key.remote_port};
}

// ------------------------------------------------------------ control input

void SttcpBackup::on_control(util::ByteView data, net::Ipv4Address src,
                             std::uint16_t src_port) {
    if (!stack_.powered() || !started_ || taken_over_) return;
    (void)src_port;
    Senior* senior = find_senior(src);
    if (senior == nullptr) return;  // juniors and strangers carry no authority
    auto msg = ControlMessage::parse(data);
    if (!msg) return;
    ++stats_.control_messages_received;
    if (senior->alive) senior->detector->on_heartbeat();

    // Data-bearing replies are only honoured from the current primary.
    switch (msg->type) {
        case ControlType::kHeartbeat:
            ++stats_.heartbeats_received;
            break;
        case ControlType::kMissingReply:
            if (src == current_primary_) on_missing_reply(*msg);
            break;
        case ControlType::kStateReply:
            if (src == current_primary_) on_state_reply(*msg);
            break;
        case ControlType::kBackupAck:
        case ControlType::kMissingReq:
        case ControlType::kStateReq:
            break;  // a primary never sends acks/requests
    }
}

void SttcpBackup::on_missing_reply(const ControlMessage& msg) {
    auto it = conns_.find(msg.conn);
    if (it == conns_.end()) return;
    auto& conn = *it->second.conn;

    // Inject the recovered bytes through the normal TCP receive path as a
    // synthetic segment, exactly as if the tap had delivered it.
    net::TcpSegment seg;
    seg.src_port = msg.conn.client_port;
    seg.dst_port = msg.conn.server_port;
    seg.seq = msg.seq;
    seg.flags.ack = true;
    seg.ack = conn.snd_una();
    seg.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(conn.snd_wnd(), 65535));
    seg.payload = msg.payload;
    stats_.missing_bytes_recovered += msg.payload.size();
    conn.on_segment(seg);
}

bool SttcpBackup::on_orphan_segment(const net::TcpSegment& seg, net::Ipv4Address src,
                                    net::Ipv4Address dst) {
    if (taken_over_ || !started_) return false;
    if (dst != options_.service_ip || seg.flags.rst) return false;
    auto lit = listeners_.find(seg.dst_port);
    if (lit == listeners_.end() || lit->second.expired()) return false;

    // Traffic for a service connection we never shadowed: our tap lost the
    // handshake. Ask the primary for the connection anchors, then replay the
    // retained client stream (late-join). Swallow the segment either way —
    // a shadow must never RST a live service flow.
    ConnId id{dst, seg.dst_port, src, seg.src_port};
    auto pending = pending_joins_.find(id);
    if (pending != pending_joins_.end() &&
        stack_.sim().now() - pending->second < options_.config.sync_time) {
        return true;  // request already in flight
    }
    bool fresh = pending == pending_joins_.end();
    pending_joins_[id] = stack_.sim().now();
    send_state_request(id);
    // Re-request on a timer, not just on the next orphan segment: a client
    // that is purely receiving (bulk download) may never transmit again, and
    // a lost kStateReply would otherwise leave the connection unshadowed
    // until the primary dies with it (found by the chaos soak).
    if (fresh) schedule_join_retry(id);
    return true;
}

void SttcpBackup::send_state_request(const ConnId& id) {
    ControlMessage req;
    req.type = ControlType::kStateReq;
    req.conn = id;
    control_->send_to(current_primary_, options_.config.control_port, req.serialize());
}

void SttcpBackup::schedule_join_retry(const ConnId& id) {
    stack_.sim().schedule_after(options_.config.sync_time, [this, id]() {
        if (taken_over_ || !started_ || !stack_.powered()) return;
        auto it = pending_joins_.find(id);
        if (it == pending_joins_.end() || conns_.count(id)) return;  // joined
        it->second = stack_.sim().now();
        send_state_request(id);
        schedule_join_retry(id);
    });
}

void SttcpBackup::on_state_reply(const ControlMessage& msg) {
    auto state = msg.state_reply();
    if (!state) return;
    const ConnId& id = msg.conn;
    pending_joins_.erase(id);
    if (conns_.count(id)) return;  // raced with a normal handshake shadow
    auto lit = listeners_.find(id.server_port);
    if (lit == listeners_.end()) return;
    auto listener = lit->second.lock();
    if (!listener) return;

    ++stats_.late_joins;
    tcp::FlowKey key{id.server_ip, id.server_port, id.client_ip, id.client_port};
    auto conn = std::make_shared<tcp::TcpConnection>(stack_, key, stack_.tcp_config());
    conn->set_close_hook([this, id]() { conns_.erase(id); });
    Shadow shadow;
    shadow.conn = conn;
    auto [it, _] = conns_.emplace(id, std::move(shadow));
    it->second.conn->set_rcv_advance_hook([this, id]() {
        auto sit = conns_.find(id);
        if (sit != conns_.end()) maybe_ack(sit->second, /*force=*/false);
    });
    conn->open_shadow_join(state->first_available_seq, state->iss);
    stack_.register_connection(conn);
    listener->dispatch_accept(conn);

    // Fetch everything the primary has seen that we missed.
    if (state->rcv_nxt > state->first_available_seq) {
        it->second.has_requested = true;
        it->second.requested_through = state->rcv_nxt;
        stats_.missing_bytes_requested += state->rcv_nxt - state->first_available_seq;
        ++stats_.gaps_detected;
        ControlMessage req;
        req.type = ControlType::kMissingReq;
        req.conn = id;
        req.seq = state->first_available_seq;
        req.seq_end = state->rcv_nxt;
        control_->send_to(current_primary_, options_.config.control_port, req.serialize());
    }
}

// ------------------------------------------------------------------ tapping

void SttcpBackup::on_tap(const net::TcpSegment& seg, net::Ipv4Address src,
                         net::Ipv4Address dst) {
    if (taken_over_ || !started_) return;
    if (src != options_.service_ip) return;  // only primary->client traffic
    ++stats_.tap_segments_observed;
    if (!seg.flags.ack) return;

    ConnId id{options_.service_ip, seg.src_port, dst, seg.dst_port};
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Shadow& shadow = it->second;
    if (!shadow.primary_acked_valid || shadow.primary_acked < seg.ack) {
        shadow.primary_acked = seg.ack;
        shadow.primary_acked_valid = true;
    }

    // The primary's tapped SYN/ACK carries its exact ISN — the most robust
    // anchor for the shadow's send sequence space (the client's handshake
    // ACK may have been lost to the tap).
    if (seg.flags.syn && shadow.conn->state() == tcp::TcpState::kSynReceived) {
        shadow.conn->anchor_shadow(seg.seq);
        if constexpr (check::kEnabled) {
            check::SttcpInvariantAuditor::audit_isn_sync(*shadow.conn, seg.seq,
                                                         stack_.sim().now());
        }
        return;
    }
    if (shadow.conn->state() != tcp::TcpState::kEstablished &&
        shadow.conn->state() != tcp::TcpState::kCloseWait)
        return;

    // The primary acknowledged client bytes up to seg.ack. If we have not
    // received them, the client will purge them from its send buffer and
    // they become unrecoverable from the tap — fetch them from the primary
    // (paper §4.2).
    util::Seq32 our_nxt = shadow.conn->rcv_nxt();
    if (seg.ack <= our_nxt) return;  // we are caught up

    util::Seq32 begin = our_nxt;
    util::Seq32 end = seg.ack;
    if (end - begin > kMaxRequestSpan) end = begin + kMaxRequestSpan;
    // Suppress duplicate requests for a range already in flight.
    if (shadow.has_requested && end <= shadow.requested_through && begin >= our_nxt)
        return;

    ++stats_.gaps_detected;
    stats_.missing_bytes_requested += end - begin;
    shadow.has_requested = true;
    shadow.requested_through = end;

    ControlMessage req;
    req.type = ControlType::kMissingReq;
    req.conn = id;
    req.seq = begin;
    req.seq_end = end;
    control_->send_to(current_primary_, options_.config.control_port, req.serialize());
}

// ------------------------------------------------------------------- acking

void SttcpBackup::maybe_ack(Shadow& shadow, bool force) {
    auto& conn = *shadow.conn;
    if (conn.state() != tcp::TcpState::kEstablished &&
        conn.state() != tcp::TcpState::kCloseWait)
        return;

    util::Seq32 last_in_order = conn.rcv_nxt() - 1;  // NextByteExpected - 1
    std::size_t threshold =
        options_.config.effective_ack_threshold(conn.config().recv_buffer_size);
    bool due = !shadow.acked_once ||
               (last_in_order - shadow.last_byte_acked) >= threshold;
    if (!due && !force) return;
    if (shadow.acked_once && last_in_order == shadow.last_byte_acked && !force) return;

    ControlMessage ack;
    ack.type = ControlType::kBackupAck;
    ack.conn = conn_id_of(conn);
    ack.seq = last_in_order;
    control_->send_to(current_primary_, options_.config.control_port, ack.serialize());
    shadow.last_byte_acked = last_in_order;
    shadow.acked_once = true;
    ++stats_.acks_sent;
}

void SttcpBackup::schedule_sync() {
    // Periodic-rearm pattern: the callback re-arms its own slot each
    // SyncTime, so the ack-strategy clock never tears a slot down.
    sync_timer_ = stack_.sim().schedule_after(options_.config.sync_time, [this]() {
        if (!stack_.powered() || !started_ || taken_over_) {
            sync_timer_ = sim::kInvalidEventId;
            return;
        }
        // SyncTime expired: ack every shadowed connection regardless of how
        // few bytes arrived (paper §4.3, second trigger).
        for (auto& [_, shadow] : conns_) maybe_ack(shadow, /*force=*/true);
        stack_.sim().rearm_after(sync_timer_, options_.config.sync_time);
    });
}

void SttcpBackup::send_heartbeat() {
    ControlMessage hb;
    hb.type = ControlType::kHeartbeat;
    hb.seq = util::Seq32{hb_counter_++};
    util::Bytes raw = hb.serialize();
    // To the current primary (liveness for its detector) and to every
    // junior backup (they monitor us as a succession candidate).
    control_->send_to(current_primary_, options_.config.control_port, raw);
    for (std::size_t i = options_.self_index + 1; i < options_.members.size(); ++i) {
        control_->send_to(options_.members[i], options_.config.control_port, raw);
    }
    ++stats_.heartbeats_sent;
}

void SttcpBackup::schedule_heartbeat() {
    hb_timer_ = stack_.sim().schedule_after(options_.config.hb_interval, [this]() {
        if (!stack_.powered() || !started_ || taken_over_) {
            hb_timer_ = sim::kInvalidEventId;
            return;
        }
        send_heartbeat();
        stack_.sim().rearm_after(hb_timer_, options_.config.hb_interval);
    });
}

// ----------------------------------------------------------------- failover

void SttcpBackup::on_senior_suspected(net::Ipv4Address ip) {
    Senior* senior = find_senior(ip);
    if (senior == nullptr || !senior->alive) return;
    if (!suspicion_recorded_) {
        suspicion_recorded_ = true;
        first_suspected_at_ = stack_.sim().now();
    }
    // Perfect failure detection: make sure the peer is really dead before
    // acting on the suspicion (paper §3.2).
    if (fencer_) {
        fencer_(ip, [this, ip]() {
            Senior* s = find_senior(ip);
            if (s != nullptr) {
                s->alive = false;
                s->detector->stop();
            }
            evaluate_succession();
        });
    } else {
        senior->alive = false;
        senior->detector->stop();
        evaluate_succession();
    }
}

void SttcpBackup::evaluate_succession() {
    if (taken_over_ || !started_) return;
    // Count live seniors; if any remain, the most senior live one is (or
    // will become) the primary — re-home to it and keep shadowing.
    const Senior* heir = nullptr;
    for (const auto& s : seniors_) {
        if (s.alive) {
            heir = &s;
            break;
        }
    }
    if (heir != nullptr) {
        if (current_primary_ != heir->ip) {
            current_primary_ = heir->ip;
            ++stats_.rehomings;
            // Re-introduce ourselves: an immediate ack per connection gives
            // the promoted primary our replication state without waiting a
            // SyncTime.
            for (auto& [_, shadow] : conns_) maybe_ack(shadow, /*force=*/true);
        }
        return;
    }
    if constexpr (check::kEnabled) {
        auto live = static_cast<std::size_t>(std::count_if(
            seniors_.begin(), seniors_.end(), [](const Senior& s) { return s.alive; }));
        check::SttcpInvariantAuditor::audit_takeover(taken_over_, live, "backup succession",
                                                     stack_.sim().now());
    }
    take_over();
}

void SttcpBackup::take_over() {
    if (taken_over_ || !stack_.powered()) return;
    taken_over_ = true;
    ++stats_.failovers;
    sim::TimePoint suspected_at =
        suspicion_recorded_ ? first_suspected_at_ : stack_.sim().now();

    for (auto& s : seniors_) s.detector->stop();
    stack_.sim().cancel(hb_timer_);
    hb_timer_ = sim::kInvalidEventId;
    stack_.sim().cancel(sync_timer_);
    sync_timer_ = sim::kInvalidEventId;

    // Become the service: answer ARP for the SVI, update client ARP caches,
    // stop suppressing output (the egress filter consults taken_over_).
    stack_.unsuppress_arp_for(options_.service_ip);
    stack_.send_gratuitous_arp(options_.service_ip);

    // Double-failure masking (paper §3.2): if the dead primary had acked
    // client bytes we never received, neither client nor primary can supply
    // them now — recover the raw frames from the packet logger.
    for (auto& [id, shadow] : conns_) recover_from_logger(id, shadow);

    // Kick every shadowed connection: retransmit unacknowledged data right
    // away instead of waiting out an RTO (the paper's prototype flips the
    // /proc flag and the kernel "starts sending the packets to the client
    // instead of dropping them").
    for (auto& [_, shadow] : conns_) shadow.conn->on_takeover();

    promote();

    if (on_failover_) on_failover_(suspected_at, stack_.sim().now());
}

void SttcpBackup::promote() {
    // Serve any backups ranked below this node as a full ST-TCP primary
    // (paper §3: the protocol supports "one or more backup servers"; after
    // a takeover the survivors keep shadowing — sequence numbers are shared
    // group-wide, so their state carries over unchanged).
    SttcpPrimary::Options popts;
    popts.config = options_.config;
    popts.service_ip = options_.service_ip;
    for (std::size_t i = options_.self_index + 1; i < options_.members.size(); ++i) {
        popts.backup_ips.push_back(options_.members[i]);
    }
    promoted_ = std::make_unique<SttcpPrimary>(stack_, popts);
    if (fencer_) {
        promoted_->set_fencer(fencer_);
    }
    for (auto& [port, weak_listener] : listeners_) {
        if (auto listener = weak_listener.lock()) promoted_->adopt_listener(*listener);
    }
    for (auto& [_, shadow] : conns_) promoted_->adopt_connection(shadow.conn);
    promoted_->start();
}

void SttcpBackup::recover_from_logger(const ConnId& id, Shadow& shadow) {
    if (!logger_query_) return;
    auto& conn = *shadow.conn;
    if (conn.state() != tcp::TcpState::kEstablished &&
        conn.state() != tcp::TcpState::kCloseWait)
        return;
    util::Seq32 begin = conn.rcv_nxt();
    // The tapped primary->client acks put a floor under what must be
    // recovered, but the same tap fault that lost the data usually lost the
    // acks too (a blackout toward our NIC eats both), so primary_acked can
    // under-report. The dead primary can never have acked client bytes
    // beyond its own receive window above our rcv_nxt — the twin stacks run
    // the same config — so sweep that whole span: replaying a byte the
    // client could still retransmit is harmless (reassembly dedups), while
    // missing an acked byte deadlocks the promoted connection forever.
    util::Seq32 end = begin + static_cast<std::uint32_t>(conn.config().recv_buffer_size);
    if (shadow.primary_acked_valid && shadow.primary_acked > end)
        end = shadow.primary_acked;
    if (end <= begin) return;

    std::uint64_t recovered = 0;
    for (const util::Bytes& raw : logger_query_(id, begin, end)) {
        try {
            net::EthernetFrame frame = net::EthernetFrame::parse(raw);
            if (frame.type != net::EtherType::kIpv4) continue;
            net::Ipv4Packet ip = net::Ipv4Packet::parse(frame.payload.view());
            if (ip.proto != net::IpProto::kTcp) continue;
            net::TcpSegment seg = net::TcpSegment::parse(ip.payload, ip.src, ip.dst);
            std::uint64_t before = conn.recv_stream_offset();
            conn.on_segment(seg);
            recovered += conn.recv_stream_offset() - before;
        } catch (const util::WireError&) {
            continue;  // a corrupted log entry is not a usable recovery source
        }
    }
    if (recovered > 0) {
        ++stats_.logger_recoveries;
        stats_.logger_bytes_recovered += recovered;
    }
}

} // namespace sttcp::core
