// ST-TCP configuration (paper §4).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace sttcp::core {

struct SttcpConfig {
    // Heartbeat interval (paper §6 sweeps 50 ms .. 5 s).
    sim::Duration hb_interval = sim::milliseconds{50};
    // Consecutive missed heartbeats before suspecting the peer (paper §6.2:
    // "the backup concluded that the primary has crashed after missing three
    // consecutive HB from the primary").
    int hb_miss_threshold = 3;

    // Backup acknowledgment strategy (paper §4.3): ack when at least
    // `ack_threshold_bytes` new in-order bytes arrived since the last ack
    // (X, default 3/4 of the second buffer), or when `sync_time` elapsed.
    // 0 means "derive as 3/4 of second_buffer_bytes".
    std::size_t ack_threshold_bytes = 0;
    sim::Duration sync_time = sim::milliseconds{50};

    // Size of the primary's second receive buffer (paper §4.2: "we double
    // the space allocated for the receive buffer" — so this defaults to the
    // TCP receive buffer size; 0 means "same as tcp recv_buffer_size").
    std::size_t second_buffer_bytes = 0;

    // UDP port of the primary/backup control channel.
    std::uint16_t control_port = 5700;

    [[nodiscard]] std::size_t effective_second_buffer(std::size_t recv_buffer) const {
        return second_buffer_bytes ? second_buffer_bytes : recv_buffer;
    }
    [[nodiscard]] std::size_t effective_ack_threshold(std::size_t recv_buffer) const {
        return ack_threshold_bytes ? ack_threshold_bytes
                                   : effective_second_buffer(recv_buffer) * 3 / 4;
    }
};

} // namespace sttcp::core
