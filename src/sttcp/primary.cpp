#include "sttcp/primary.hpp"

#include <algorithm>
#include <sstream>

#include "check/sttcp_auditor.hpp"

namespace sttcp::core {

namespace {
// Missing-segment replies are chunked to fit comfortably in one Ethernet
// frame (UDP header + control header + payload < MTU).
constexpr std::size_t kReplyChunk = 1200;
} // namespace

SttcpPrimary::SttcpPrimary(tcp::HostStack& stack, Options options)
    : stack_(stack), options_(std::move(options)) {
    control_ = stack_.udp_bind(options_.config.control_port);
    control_->set_rx_handler(
        [this](util::ByteView data, net::Ipv4Address src, std::uint16_t src_port) {
            on_control(data, src, src_port);
        });
    for (net::Ipv4Address ip : options_.backup_ips) {
        Backup b;
        b.ip = ip;
        b.detector = std::make_unique<FailureDetector>(
            stack_.sim(), options_.config.hb_interval, options_.config.hb_miss_threshold);
        b.detector->set_alive_predicate([this]() { return stack_.powered(); });
        b.detector->set_on_suspect([this, ip]() {
            if (!stack_.powered()) return;
            on_backup_suspected(ip);
        });
        backups_.push_back(std::move(b));
    }
    if (backups_.empty()) ft_mode_ = false;
}

std::shared_ptr<tcp::TcpListener> SttcpPrimary::listen(std::uint16_t port) {
    auto listener = stack_.tcp_listen(port);
    adopt_listener(*listener);
    return listener;
}

void SttcpPrimary::adopt_listener(tcp::TcpListener& listener) {
    listener.set_connection_setup([this](tcp::TcpConnection& conn) {
        if (!ft_mode_) return;  // all backups dead: plain TCP service
        setup_connection(conn);
    });
}

void SttcpPrimary::setup_connection(tcp::TcpConnection& conn) {
    std::size_t recv_buf = conn.config().recv_buffer_size;
    auto retention = std::make_unique<SecondReceiveBuffer>(
        options_.config.effective_second_buffer(recv_buf));
    conn.set_retention_hook(retention.get());
    ConnId id = conn_id_of(conn);
    conn.set_close_hook([this, id]() { conns_.erase(id); });
    Shadowed shadowed;
    shadowed.conn = conn.shared_from_this();
    shadowed.retention = std::move(retention);
    conns_[id] = std::move(shadowed);
}

void SttcpPrimary::adopt_connection(const std::shared_ptr<tcp::TcpConnection>& conn) {
    if (!ft_mode_ || conn->state() == tcp::TcpState::kClosed) return;
    if (conns_.count(conn_id_of(*conn))) return;
    setup_connection(*conn);
}

void SttcpPrimary::start() {
    started_ = true;
    for (auto& b : backups_) b.detector->start();
    schedule_heartbeat();
}

void SttcpPrimary::stop() {
    started_ = false;
    for (auto& b : backups_) b.detector->stop();
    stack_.sim().cancel(hb_timer_);
    hb_timer_ = sim::kInvalidEventId;
}

std::size_t SttcpPrimary::live_backups() const {
    return static_cast<std::size_t>(
        std::count_if(backups_.begin(), backups_.end(), [](const Backup& b) { return b.alive; }));
}

std::size_t SttcpPrimary::retained_bytes() const {
    std::size_t total = 0;
    for (const auto& [_, shadowed] : conns_) total += shadowed.retention->size();
    return total;
}

SttcpPrimary::Backup* SttcpPrimary::find_backup(net::Ipv4Address ip) {
    for (auto& b : backups_) {
        if (b.ip == ip) return &b;
    }
    return nullptr;
}

ConnId SttcpPrimary::conn_id_of(const tcp::TcpConnection& conn) const {
    const tcp::FlowKey& key = conn.key();
    return ConnId{key.local_ip, key.local_port, key.remote_ip, key.remote_port};
}

void SttcpPrimary::on_control(util::ByteView data, net::Ipv4Address src,
                              std::uint16_t src_port) {
    if (!stack_.powered() || !started_) return;
    (void)src_port;
    Backup* backup = find_backup(src);
    if (backup == nullptr || !backup->alive) return;
    auto msg = ControlMessage::parse(data);
    if (!msg) return;
    ++stats_.control_messages_received;
    backup->detector->on_heartbeat();  // any traffic from a backup is liveness

    switch (msg->type) {
        case ControlType::kHeartbeat:
            break;
        case ControlType::kBackupAck:
            on_backup_ack(src, *msg);
            break;
        case ControlType::kMissingReq:
            serve_missing(src, *msg);
            break;
        case ControlType::kStateReq:
            serve_state(src, *msg);
            break;
        case ControlType::kMissingReply:
        case ControlType::kStateReply:
            break;  // primary never receives these
    }
}

void SttcpPrimary::on_backup_ack(net::Ipv4Address from, const ControlMessage& msg) {
    ++stats_.backup_acks_received;
    auto it = conns_.find(msg.conn);
    if (it != conns_.end()) {
        it->second.backup_acked[from] = msg.seq;
        maybe_release(it->second);
    }
    // The response to a backup ack doubles as the primary's heartbeat
    // (paper §4.3: "the acks sent by the backup server and its response
    // sent back by the primary ... serve as heartbeat messages").
    send_heartbeat();
}

void SttcpPrimary::maybe_release(Shadowed& shadowed) {
    // A byte may be discarded only once EVERY live backup has acked it
    // (with one backup this is the paper's LastByteAcked rule verbatim).
    bool have_min = false;
    util::Seq32 min_acked;
    for (const auto& b : backups_) {
        if (!b.alive) continue;
        auto it = shadowed.backup_acked.find(b.ip);
        if (it == shadowed.backup_acked.end()) return;  // not acked yet: hold
        min_acked = have_min ? util::min(min_acked, it->second) : it->second;
        have_min = true;
    }
    if (!have_min) return;
    std::size_t released = shadowed.retention->release_through(min_acked);
    if constexpr (check::kEnabled) {
        check::SttcpInvariantAuditor::audit_retention(*shadowed.conn, *shadowed.retention,
                                                      min_acked, stack_.sim().now());
    }
    if (released > 0) {
        stats_.bytes_released += released;
        // Freed second-buffer space may unblock application reads.
        shadowed.conn->notify_readable();
    }
}

void SttcpPrimary::audit_connections() {
    if constexpr (check::kEnabled) {
        for (auto& [_, shadowed] : conns_) {
            check::SttcpInvariantAuditor::audit_retention(
                *shadowed.conn, *shadowed.retention, std::nullopt, stack_.sim().now());
        }
    }
}

void SttcpPrimary::serve_missing(net::Ipv4Address requester, const ControlMessage& msg) {
    auto it = conns_.find(msg.conn);
    if (it == conns_.end()) return;
    ++stats_.missing_requests_served;
    Shadowed& shadowed = it->second;

    util::Seq32 seq = msg.seq;
    while (seq < msg.seq_end) {
        std::uint32_t remaining = msg.seq_end - seq;
        std::size_t want = std::min<std::size_t>(remaining, kReplyChunk);
        util::Bytes chunk(want);
        // Bytes already read by the application sit in the second buffer;
        // unread bytes are still in the TCP receive buffer.
        std::size_t n = shadowed.retention->copy_from(seq, chunk);
        if (n == 0) n = shadowed.conn->copy_received(seq, chunk);
        if (n == 0) break;  // not available (already released) — backup must
                            // fall back to the packet logger
        chunk.resize(n);
        ControlMessage reply;
        reply.type = ControlType::kMissingReply;
        reply.conn = msg.conn;
        reply.seq = seq;
        reply.payload = std::move(chunk);
        control_->send_to(requester, options_.config.control_port, reply.serialize());
        stats_.missing_bytes_sent += n;
        seq += static_cast<std::uint32_t>(n);
    }
}

void SttcpPrimary::serve_state(net::Ipv4Address requester, const ControlMessage& msg) {
    auto it = conns_.find(msg.conn);
    if (it == conns_.end()) return;
    ++stats_.state_requests_served;
    const Shadowed& shadowed = it->second;
    ConnState state;
    // Earliest client byte still replayable: the second buffer's front if it
    // holds anything, else the first unread byte of the TCP receive buffer.
    state.first_available_seq = shadowed.retention->size() > 0
                                    ? shadowed.retention->front_seq()
                                    : shadowed.conn->receive_buffer().read_seq();
    state.rcv_nxt = shadowed.conn->rcv_nxt();
    state.iss = shadowed.conn->iss();
    control_->send_to(requester, options_.config.control_port,
                      ControlMessage::make_state_reply(msg.conn, state).serialize());
}

void SttcpPrimary::send_heartbeat() {
    ControlMessage hb;
    hb.type = ControlType::kHeartbeat;
    hb.seq = util::Seq32{hb_counter_++};
    util::Bytes raw = hb.serialize();
    for (const auto& b : backups_) {
        if (!b.alive) continue;
        control_->send_to(b.ip, options_.config.control_port, raw);
    }
    ++stats_.heartbeats_sent;
}

void SttcpPrimary::schedule_heartbeat() {
    hb_timer_ = stack_.sim().schedule_after(options_.config.hb_interval, [this]() {
        if (!stack_.powered() || !started_ || !ft_mode_) {
            hb_timer_ = sim::kInvalidEventId;
            return;
        }
        send_heartbeat();
        stack_.sim().rearm_after(hb_timer_, options_.config.hb_interval);
    });
}

void SttcpPrimary::on_backup_suspected(net::Ipv4Address ip) {
    // Suspicion -> certainty: fence the backup before dropping it from the
    // ack quorum (paper §4.4: "we convert wrong suspicions into correct
    // suspicions by switching off the power of a suspected computer").
    if (fencer_) {
        fencer_(ip, [this, ip]() { drop_backup(ip); });
    } else {
        drop_backup(ip);
    }
}

void SttcpPrimary::drop_backup(net::Ipv4Address ip) {
    Backup* backup = find_backup(ip);
    if (backup == nullptr || !backup->alive) return;
    if constexpr (check::kEnabled) {
        std::ostringstream who;
        who << "backup " << ip;
        check::SttcpInvariantAuditor::audit_backup_drop(backup->detector->suspected(),
                                                        who.str(), stack_.sim().now());
    }
    backup->alive = false;
    backup->detector->stop();
    ++stats_.backups_declared_dead;
    if (live_backups() == 0) {
        enter_non_ft_mode();
        return;
    }
    // The quorum shrank: bytes the dead backup was holding up may now be
    // releasable.
    for (auto& [_, shadowed] : conns_) maybe_release(shadowed);
}

void SttcpPrimary::enter_non_ft_mode() {
    if (!ft_mode_) return;
    ft_mode_ = false;
    for (auto& b : backups_) b.detector->stop();
    stack_.sim().cancel(hb_timer_);
    hb_timer_ = sim::kInvalidEventId;
    // Stop retaining: release everything and unhook, so the service behaves
    // exactly like standard TCP from here on (paper §4.4: "on detecting
    // failure of the backup, the primary transitions to non-fault-tolerant
    // mode").
    for (auto& [_, shadowed] : conns_) {
        shadowed.retention->disable();
        shadowed.conn->set_retention_hook(nullptr);
        shadowed.conn->notify_readable();
    }
    if (on_backup_failed_) on_backup_failed_();
}

} // namespace sttcp::core
