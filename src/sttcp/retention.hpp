// The ST-TCP primary's second receive buffer (paper §4.2, Figure 4b).
//
// Standard TCP discards a received byte once the application reads it.
// ST-TCP must additionally hold it until the backup has acknowledged it over
// the control channel, because a byte the primary acked to the client can
// never be recovered from the client again. Bytes read-but-not-backup-acked
// live here:
//
//      [ LastByteAcked+1 ............ LastByteRead ]   (this buffer)
//      [ LastByteRead+1 ....... NextByteExpected-1 ]   (first/TCP buffer)
//
// Implements tcp::RetentionHook: max_consumable() throttles application
// reads when this buffer is full (the paper's "behavior differs if the
// second buffer fills up"), and on_consumed() captures bytes as they leave
// the first buffer.
#pragma once

#include <cstdint>
#include <string>

#include "check/audit.hpp"
#include "tcp/tcp_connection.hpp"
#include "util/ring_buffer.hpp"
#include "util/seq32.hpp"

namespace sttcp::core {

class SecondReceiveBuffer final : public tcp::RetentionHook {
public:
    explicit SecondReceiveBuffer(std::size_t capacity) : ring_(capacity) {}

    // -- RetentionHook ------------------------------------------------------
    [[nodiscard]] std::size_t max_consumable() override {
        return enabled_ ? ring_.free_space() : SIZE_MAX;
    }
    void on_consumed(util::Seq32 seq, util::ByteView data) override {
        if (!enabled_) return;
        if (!primed_) {
            // First retained byte anchors the sequence space; until now
            // front_seq_ was meaningless (see primed()).
            front_seq_ = seq;
            primed_ = true;
        } else if (ring_.empty()) {
            // release_through() kept front_seq_ at LastByteAcked+1 across the
            // empty stretch, and the next consumed byte must continue there.
            if constexpr (check::kEnabled) {
                check::require(seq == front_seq_, "sttcp.retention.capture_gap",
                               "second_receive_buffer",
                               "consumed chunk at " + std::to_string(seq.raw()) +
                                   " but retained run ends at " +
                                   std::to_string(front_seq_.raw()));
            }
            front_seq_ = seq;
        } else if constexpr (check::kEnabled) {
            // Consumed chunks must extend the retained run byte-for-byte; a
            // gap means some read byte was never captured (Figure 4's
            // "retained until backup-acked" guarantee is already broken).
            check::require(seq == front_seq_ + static_cast<std::uint32_t>(ring_.size()),
                           "sttcp.retention.capture_gap", "second_receive_buffer",
                           "consumed chunk at " + std::to_string(seq.raw()) +
                               " but retained run ends at " +
                               std::to_string((front_seq_ +
                                               static_cast<std::uint32_t>(ring_.size()))
                                                  .raw()));
        }
        std::size_t n = ring_.write(data);
        // The connection asked max_consumable() first, so it all fits.
        (void)n;
    }

    // -- control-channel side -----------------------------------------------
    // Backup acknowledged bytes up to and including `last_byte_acked`.
    // Returns the number of bytes released.
    std::size_t release_through(util::Seq32 last_byte_acked) {
        if (ring_.empty()) return 0;
        util::Seq32 release_end = last_byte_acked + 1;  // one past last acked
        if (release_end <= front_seq_) return 0;
        std::uint32_t n = release_end - front_seq_;
        std::size_t released = ring_.consume(std::min<std::size_t>(n, ring_.size()));
        front_seq_ += static_cast<std::uint32_t>(released);
        return released;
    }

    // Copies retained bytes starting at `seq` (for missing-segment replies).
    std::size_t copy_from(util::Seq32 seq, std::span<std::uint8_t> out) const {
        if (ring_.empty() || seq < front_seq_) return 0;
        std::uint32_t offset = seq - front_seq_;
        if (offset >= ring_.size()) return 0;
        return ring_.peek(out, offset);
    }

    // Switching to non-fault-tolerant mode (backup died): stop retaining and
    // drop everything held.
    void disable() {
        enabled_ = false;
        ring_.clear();
    }
    [[nodiscard]] bool enabled() const { return enabled_; }

    // False until the first byte is retained. Before that, front_seq() is
    // not anchored in the connection's sequence space and must not be
    // compared against backup acks — a backup acks the bare handshake as
    // soon as it taps it, which can be long before the first data byte if
    // the client's opening segment is lost (found by the chaos soak).
    [[nodiscard]] bool primed() const { return primed_; }

    [[nodiscard]] std::size_t size() const { return ring_.size(); }
    [[nodiscard]] std::size_t capacity() const { return ring_.capacity(); }
    [[nodiscard]] util::Seq32 front_seq() const { return front_seq_; }

private:
    util::RingBuffer ring_;
    util::Seq32 front_seq_;  // wire seq of ring front (LastByteAcked+1)
    bool primed_ = false;
    bool enabled_ = true;
};

} // namespace sttcp::core
