// ST-TCP primary server engine (paper §4.2–§4.4, primary side).
//
// Wraps a listening service on the primary host's stack:
//   * gives every accepted connection a second receive buffer
//     (SecondReceiveBuffer) so received client bytes are only discarded once
//     every live backup has acknowledged them ("one or more backup
//     servers", §3 — retention releases at the minimum ack across backups);
//   * runs the UDP control channel: consumes backup acks, answers
//     missing-segment and state requests, sends heartbeats, and replies to
//     every backup ack (the ack/response pair doubles as the heartbeat
//     exchange, §4.3);
//   * monitors each backup with a FailureDetector; a dead backup is fenced
//     and dropped from the ack quorum; when the last backup dies the
//     service falls back to non-fault-tolerant mode (§4.4).
//
// A promoted backup (cascading failover) constructs one of these at
// takeover and adopts its existing listeners and shadowed connections —
// see SttcpBackup::take_over.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sttcp/config.hpp"
#include "sttcp/control_messages.hpp"
#include "sttcp/failure_detector.hpp"
#include "sttcp/retention.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::core {

class SttcpPrimary {
public:
    struct Options {
        SttcpConfig config;
        net::Ipv4Address service_ip;  // SVI: where clients connect
        // Backups in priority order (the first is next in line). Empty =
        // start directly in non-fault-tolerant mode.
        std::vector<net::Ipv4Address> backup_ips;
    };

    // Confirms the given peer is dead, then invokes the continuation
    // (power-switch fencing; a no-op fencer makes the detector merely
    // eventually-perfect).
    using Fencer = std::function<void(net::Ipv4Address peer, std::function<void()> on_confirmed)>;

    SttcpPrimary(tcp::HostStack& stack, Options options);
    // Stops, so the heartbeat timer's [this]-capturing event cannot outlive
    // the engine (found by staticcheck's event-lifecycle rule).
    ~SttcpPrimary() { stop(); }

    SttcpPrimary(const SttcpPrimary&) = delete;
    SttcpPrimary& operator=(const SttcpPrimary&) = delete;

    // Replaces stack.tcp_listen() for the fault-tolerant service.
    std::shared_ptr<tcp::TcpListener> listen(std::uint16_t port);

    // Promotion support: installs the ST-TCP connection_setup on an
    // existing listener (keeping the application's accept handler), and
    // starts retaining for an already-established connection.
    void adopt_listener(tcp::TcpListener& listener);
    void adopt_connection(const std::shared_ptr<tcp::TcpConnection>& conn);

    // Starts heartbeats and backup monitoring.
    void start();
    void stop();

    void set_fencer(Fencer fencer) { fencer_ = std::move(fencer); }
    // Called when the primary gives up on the last backup.
    void set_on_backup_failed(std::function<void()> cb) { on_backup_failed_ = std::move(cb); }

    [[nodiscard]] bool fault_tolerant_mode() const { return ft_mode_; }
    [[nodiscard]] std::size_t live_backups() const;
    [[nodiscard]] std::size_t shadowed_connections() const { return conns_.size(); }
    [[nodiscard]] std::size_t retained_bytes() const;

    struct Stats {
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t backup_acks_received = 0;
        std::uint64_t bytes_released = 0;
        std::uint64_t missing_requests_served = 0;
        std::uint64_t missing_bytes_sent = 0;
        std::uint64_t state_requests_served = 0;
        std::uint64_t control_messages_received = 0;
        std::uint64_t backups_declared_dead = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }
    // Raw datagram/byte counters of the UDP control channel endpoint.
    [[nodiscard]] const tcp::UdpSocket::Stats& control_channel_stats() const {
        return control_->stats();
    }

    // Runs the standing retention invariants (Figure 4) over every shadowed
    // connection — a no-op unless built with STTCP_AUDIT. Tests call this to
    // sweep state that is only otherwise audited when a backup ack arrives.
    void audit_connections();

private:
    struct Shadowed {
        std::shared_ptr<tcp::TcpConnection> conn;
        std::unique_ptr<SecondReceiveBuffer> retention;
        // Last byte each backup acknowledged for this connection; a live
        // backup with no entry has acked nothing yet.
        std::map<net::Ipv4Address, util::Seq32> backup_acked;
    };

    struct Backup {
        net::Ipv4Address ip;
        std::unique_ptr<FailureDetector> detector;
        bool alive = true;
    };

    void setup_connection(tcp::TcpConnection& conn);
    void on_control(util::ByteView data, net::Ipv4Address src, std::uint16_t src_port);
    void on_backup_ack(net::Ipv4Address from, const ControlMessage& msg);
    void maybe_release(Shadowed& shadowed);
    void serve_missing(net::Ipv4Address requester, const ControlMessage& msg);
    void serve_state(net::Ipv4Address requester, const ControlMessage& msg);
    void send_heartbeat();
    void schedule_heartbeat();
    void on_backup_suspected(net::Ipv4Address ip);
    void drop_backup(net::Ipv4Address ip);
    void enter_non_ft_mode();
    [[nodiscard]] Backup* find_backup(net::Ipv4Address ip);
    [[nodiscard]] ConnId conn_id_of(const tcp::TcpConnection& conn) const;

    tcp::HostStack& stack_;
    Options options_;
    std::shared_ptr<tcp::UdpSocket> control_;
    std::map<ConnId, Shadowed> conns_;
    std::vector<Backup> backups_;
    Fencer fencer_;
    std::function<void()> on_backup_failed_;
    bool ft_mode_ = true;
    bool started_ = false;
    std::uint32_t hb_counter_ = 0;
    sim::EventId hb_timer_ = sim::kInvalidEventId;
    Stats stats_;
};

} // namespace sttcp::core
