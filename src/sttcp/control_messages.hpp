// Wire protocol of the primary/backup UDP control channel (paper §4.2–4.4).
//
// Four message kinds flow on this channel:
//   kHeartbeat    — liveness, both directions;
//   kBackupAck    — backup -> primary: "I have contiguously received the
//                   client byte stream up to seq" (NextByteExpected-1);
//                   doubles as a backup heartbeat;
//   kMissingReq   — backup -> primary: "re-send client bytes [begin,end) of
//                   this connection that my tap lost";
//   kMissingReply — primary -> backup: the requested bytes.
//
// Connections are identified by the full 4-tuple from the server's
// perspective, so one channel serves any number of shadowed connections.
#pragma once

#include <cstdint>
#include <optional>

#include "net/addr.hpp"
#include "util/seq32.hpp"
#include "util/wire.hpp"

namespace sttcp::core {

enum class ControlType : std::uint8_t {
    kHeartbeat = 1,
    kBackupAck = 2,
    kMissingReq = 3,
    kMissingReply = 4,
    // Late-join support: the backup saw traffic for a connection it never
    // shadowed (its tap lost the handshake). It asks the primary for the
    // connection's anchors and replays the retained client stream.
    kStateReq = 5,
    kStateReply = 6,
};

// Payload of kStateReply.
struct ConnState {
    util::Seq32 first_available_seq;  // earliest client byte still held
    util::Seq32 rcv_nxt;              // primary's NextByteExpected
    util::Seq32 iss;                  // primary's initial send sequence
};

struct ConnId {
    net::Ipv4Address server_ip;  // the virtual service IP
    std::uint16_t server_port = 0;
    net::Ipv4Address client_ip;
    std::uint16_t client_port = 0;

    friend bool operator==(const ConnId&, const ConnId&) = default;
    friend auto operator<=>(const ConnId&, const ConnId&) = default;
};

struct ControlMessage {
    ControlType type = ControlType::kHeartbeat;
    // kHeartbeat: monotone sender counter in `seq.raw()` (diagnostics only).
    // kBackupAck: `seq` = last in-order byte received (NextByteExpected-1).
    // kMissingReq: bytes [seq, seq_end) requested.
    // kMissingReply: payload bytes starting at `seq`.
    // kStateReply: seq = first_available_seq, seq_end = rcv_nxt,
    //              payload = 4-byte big-endian iss.
    ConnId conn;                 // unused for kHeartbeat
    util::Seq32 seq;
    util::Seq32 seq_end;
    util::Bytes payload;

    [[nodiscard]] static ControlMessage make_state_reply(const ConnId& id,
                                                         const ConnState& state) {
        ControlMessage m;
        m.type = ControlType::kStateReply;
        m.conn = id;
        m.seq = state.first_available_seq;
        m.seq_end = state.rcv_nxt;
        util::WireWriter w{m.payload};
        w.u32(state.iss.raw());
        return m;
    }
    [[nodiscard]] std::optional<ConnState> state_reply() const {
        if (type != ControlType::kStateReply || payload.size() != 4) return std::nullopt;
        util::WireReader r{payload};
        return ConnState{seq, seq_end, util::Seq32{r.u32()}};
    }

    [[nodiscard]] util::Bytes serialize() const;
    [[nodiscard]] static std::optional<ControlMessage> parse(util::ByteView raw);
};

} // namespace sttcp::core
