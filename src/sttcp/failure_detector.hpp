// Heartbeat-based crash detector (paper §4.4).
//
// "The failure detection is based on a timeout mechanism. The backup
// monitors heartbeat messages from the primary to detect the primary's
// failure... the backup concluded that the primary has crashed after missing
// three consecutive HB."
//
// The detector samples every `interval`: if no heartbeat has arrived within
// `miss_threshold` intervals, the peer is *suspected*. Suspicion is not yet
// failure — ST-TCP converts suspicion into certainty by fencing (power
// switch) before acting, which is what makes the detector *perfect*.
#pragma once

#include <functional>

#include "sim/simulation.hpp"

namespace sttcp::core {

class FailureDetector {
public:
    FailureDetector(sim::Simulation& simulation, sim::Duration interval, int miss_threshold)
        : sim_(simulation), interval_(interval), threshold_(miss_threshold) {}

    ~FailureDetector() { stop(); }

    FailureDetector(const FailureDetector&) = delete;
    FailureDetector& operator=(const FailureDetector&) = delete;

    void set_on_suspect(std::function<void()> cb) { on_suspect_ = std::move(cb); }

    // Crash-semantics gate: a detector on a dead machine must not fire (its
    // host "runs nothing"). Checked at every sample; when false the detector
    // silently unschedules itself.
    void set_alive_predicate(std::function<bool()> alive) { alive_ = std::move(alive); }

    void start() {
        stopped_ = false;
        suspected_ = false;
        last_heard_ = sim_.now();
        schedule_check();
    }

    void stop() {
        stopped_ = true;
        sim_.cancel(check_event_);
        check_event_ = sim::kInvalidEventId;
    }

    // Any control-channel message from the peer counts as liveness.
    void on_heartbeat() {
        if (stopped_ || suspected_) return;
        last_heard_ = sim_.now();
    }

    [[nodiscard]] bool suspected() const { return suspected_; }
    [[nodiscard]] sim::TimePoint suspected_at() const { return suspected_at_; }

private:
    void schedule_check() {
        // One persistent event samples the whole lifetime of the detector:
        // the callback rearms its own slot for the next interval, so the
        // hot sampling path is a queue re-insert — no slot teardown, no
        // lambda re-emplacement. check_event_ stays valid across samples.
        check_event_ = sim_.schedule_after(interval_, [this]() {
            if (stopped_ || suspected_ || (alive_ && !alive_())) {
                check_event_ = sim::kInvalidEventId;
                return;
            }
            if (sim_.now() - last_heard_ >= threshold_ * interval_) {
                check_event_ = sim::kInvalidEventId;
                suspected_ = true;
                suspected_at_ = sim_.now();
                if (on_suspect_) on_suspect_();
                return;
            }
            sim_.rearm_after(check_event_, interval_);
        });
    }

    sim::Simulation& sim_;
    sim::Duration interval_;
    int threshold_;
    std::function<void()> on_suspect_;
    std::function<bool()> alive_;
    sim::TimePoint last_heard_{};
    sim::TimePoint suspected_at_{};
    bool suspected_ = false;
    bool stopped_ = true;
    sim::EventId check_event_ = sim::kInvalidEventId;
};

} // namespace sttcp::core
