// ST-TCP backup server engine (paper §3, §4 — backup side).
//
// The backup is a *full* TCP server endpoint shadowing the primary:
//   * it binds the virtual service IP (SVI) and processes every tapped
//     client segment through its normal TCP receive path, running the same
//     (deterministic) application as the primary;
//   * every outgoing TCP segment from the SVI is suppressed at the stack's
//     egress, and ARP requests for the SVI are not answered, so the backup
//     is invisible to clients during failure-free operation;
//   * it anchors its send sequence space to the primary's ISN — from the
//     tapped primary SYN/ACK, or from the client's handshake ACK (§4.1);
//   * it acknowledges received client bytes to the current primary over the
//     UDP control channel (threshold X / SyncTime strategy, §4.3);
//   * it detects tap gaps by watching the primary's own segments to the
//     client and re-requests those bytes (§4.2), falling back to the packet
//     logger for omission+crash double failures (§3.2);
//   * it monitors the replica group and, when every member ranked above it
//     is dead (suspected, then fenced), takes over: suppression off,
//     gratuitous ARP for the SVI, immediate retransmission on every
//     shadowed connection — and **promotes** to a full ST-TCP primary
//     serving any backups ranked below it (paper §3: "one or more backup
//     servers").
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sttcp/config.hpp"
#include "sttcp/control_messages.hpp"
#include "sttcp/failure_detector.hpp"
#include "sttcp/primary.hpp"
#include "tcp/host_stack.hpp"

namespace sttcp::core {

class SttcpBackup {
public:
    struct Options {
        SttcpConfig config;
        net::Ipv4Address service_ip;  // SVI shadowed by this backup
        // The replica group in priority order: members[0] is the initial
        // primary, members[1] the first backup, and so on. This node is
        // members[self_index] (self_index >= 1).
        std::vector<net::Ipv4Address> members;
        std::size_t self_index = 1;
        std::size_t iface_index = 0;  // interface that taps the service LAN

        // Single-backup convenience (the paper's §6 deployment).
        [[nodiscard]] static Options single(SttcpConfig config, net::Ipv4Address service_ip,
                                            net::Ipv4Address primary_ip,
                                            net::Ipv4Address self_ip,
                                            std::size_t iface_index = 0) {
            Options o;
            o.config = config;
            o.service_ip = service_ip;
            o.members = {primary_ip, self_ip};
            o.self_index = 1;
            o.iface_index = iface_index;
            return o;
        }
    };

    using Fencer = std::function<void(net::Ipv4Address peer, std::function<void()> on_confirmed)>;
    // (suspected_at, takeover_complete_at)
    using FailoverCallback = std::function<void(sim::TimePoint, sim::TimePoint)>;
    // Retrieves raw Ethernet frames carrying client->server payload in
    // [begin, end) for a flow, from the packet-logger appliance (§3.2).
    using LoggerQuery = std::function<std::vector<util::Bytes>(
        const ConnId&, util::Seq32 begin, util::Seq32 end)>;

    SttcpBackup(tcp::HostStack& stack, Options options);
    // Stops, so the heartbeat/sync timers' [this]-capturing events cannot
    // outlive the engine (found by staticcheck's event-lifecycle rule).
    ~SttcpBackup() { stop(); }

    SttcpBackup(const SttcpBackup&) = delete;
    SttcpBackup& operator=(const SttcpBackup&) = delete;

    // The service listener; the same application code as on the primary
    // installs its accept handler here.
    std::shared_ptr<tcp::TcpListener> listen(std::uint16_t port);

    void start();
    void stop();

    void set_fencer(Fencer fencer) { fencer_ = std::move(fencer); }
    void set_on_failover(FailoverCallback cb) { on_failover_ = std::move(cb); }
    void set_logger_query(LoggerQuery query) { logger_query_ = std::move(query); }

    [[nodiscard]] bool has_taken_over() const { return taken_over_; }
    [[nodiscard]] std::size_t shadowed_connections() const { return conns_.size(); }
    [[nodiscard]] net::Ipv4Address current_primary() const { return current_primary_; }
    // Non-null after takeover: this node's ST-TCP primary engine, serving
    // the backups ranked below it.
    [[nodiscard]] SttcpPrimary* promoted() const { return promoted_.get(); }

    // Manual takeover entry point (tests; and the /proc-flag analogue of the
    // paper's §5 prototype).
    void take_over();

    struct Stats {
        std::uint64_t acks_sent = 0;
        std::uint64_t heartbeats_sent = 0;
        std::uint64_t heartbeats_received = 0;
        std::uint64_t control_messages_received = 0;
        std::uint64_t gaps_detected = 0;
        std::uint64_t missing_bytes_requested = 0;
        std::uint64_t missing_bytes_recovered = 0;
        std::uint64_t tap_segments_observed = 0;
        std::uint64_t failovers = 0;
        std::uint64_t logger_recoveries = 0;
        std::uint64_t logger_bytes_recovered = 0;
        std::uint64_t late_joins = 0;
        std::uint64_t rehomings = 0;  // switched to a promoted peer backup
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] const tcp::UdpSocket::Stats& control_channel_stats() const {
        return control_->stats();
    }

private:
    struct Shadow {
        std::shared_ptr<tcp::TcpConnection> conn;
        util::Seq32 last_byte_acked;     // to the primary, over the control channel
        bool acked_once = false;
        util::Seq32 requested_through;   // seq end of last MissingReq
        bool has_requested = false;
        // Highest client-byte ack observed from the primary (tap): evidence
        // of what the client can never retransmit.
        util::Seq32 primary_acked;
        bool primary_acked_valid = false;
    };

    // A member of the replica group ranked above this node.
    struct Senior {
        net::Ipv4Address ip;
        std::unique_ptr<FailureDetector> detector;
        bool alive = true;
    };

    void on_control(util::ByteView data, net::Ipv4Address src, std::uint16_t src_port);
    void on_tap(const net::TcpSegment& seg, net::Ipv4Address src, net::Ipv4Address dst);
    void on_missing_reply(const ControlMessage& msg);
    bool on_orphan_segment(const net::TcpSegment& seg, net::Ipv4Address src,
                           net::Ipv4Address dst);
    void on_state_reply(const ControlMessage& msg);
    void send_state_request(const ConnId& id);
    void schedule_join_retry(const ConnId& id);
    void maybe_ack(Shadow& shadow, bool force);
    void send_heartbeat();
    void schedule_heartbeat();
    void schedule_sync();
    void on_senior_suspected(net::Ipv4Address ip);
    void evaluate_succession();
    void promote();
    void recover_from_logger(const ConnId& id, Shadow& shadow);
    [[nodiscard]] Senior* find_senior(net::Ipv4Address ip);
    [[nodiscard]] ConnId conn_id_of(const tcp::TcpConnection& conn) const;

    tcp::HostStack& stack_;
    Options options_;
    std::shared_ptr<tcp::UdpSocket> control_;
    std::map<ConnId, Shadow> conns_;
    std::map<std::uint16_t, std::weak_ptr<tcp::TcpListener>> listeners_;
    std::map<ConnId, sim::TimePoint> pending_joins_;  // StateReq in flight
    std::vector<Senior> seniors_;
    net::Ipv4Address current_primary_;
    std::unique_ptr<SttcpPrimary> promoted_;
    Fencer fencer_;
    FailoverCallback on_failover_;
    LoggerQuery logger_query_;
    bool taken_over_ = false;
    bool started_ = false;
    std::uint32_t hb_counter_ = 0;
    sim::EventId hb_timer_ = sim::kInvalidEventId;
    sim::EventId sync_timer_ = sim::kInvalidEventId;
    sim::TimePoint first_suspected_at_{};
    bool suspicion_recorded_ = false;
    Stats stats_;
};

} // namespace sttcp::core
