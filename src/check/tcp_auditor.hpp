// Per-connection TCP sequence-space auditor.
//
// One instance lives inside every TcpConnection (audit builds). It is called
// after each inbound segment is processed, on every outbound segment, and
// after every sequence-space rebase, and checks the RFC 793 orderings the
// rest of the stack silently assumes:
//
//   tcp.snd.una_le_nxt            SND.UNA <= SND.NXT
//   tcp.snd.nxt_le_max            SND.NXT <= SND.MAX
//   tcp.snd.max_monotone          SND.MAX never retreats (reset on rebase)
//   tcp.snd.buffer_anchor         send buffer front tracks SND.UNA (+-1 for
//                                 SYN/FIN sequence space)
//   tcp.snd.nxt_in_buffer         SND.NXT never points past buffered data
//                                 (+1 once a FIN occupies sequence space)
//   tcp.rcv.read_le_nxt           LastByteRead+1 <= NextByteExpected (Fig. 4)
//   tcp.rcv.nxt_monotone          RCV.NXT (as a stream offset) never retreats
//   tcp.ack.monotone              emitted cumulative ACK never retreats
//   tcp.wnd.right_edge_monotone   emitted ACK+window never retracts an
//                                 advertised window (RFC 793 "shrinking")
//   tcp.emit.payload_in_buffer    every emitted data byte lies inside the
//                                 send buffer's [una, end) range
//   tcp.seq.rebase_consistent     after an ST-TCP ISN rebase (§4.1) the send
//                                 space is coherent: ISS+1 == SND.UNA ==
//                                 buffer front, SND.NXT == SND.MAX
//   tcp.state.legal_transition    every state change is an edge of the
//                                 RFC 793 / ST-TCP adjacency matrix
//                                 (tcp/state_machine.hpp, DESIGN.md §10)
//
// The auditor only reads connection state (it is a const observer); it keeps
// its own monotonicity baselines, which a rebase resets.
#pragma once

#include <cstdint>
#include <optional>

#include "check/audit.hpp"
#include "util/seq32.hpp"

namespace sttcp::net {
struct TcpSegment;
}

namespace sttcp::tcp {
class TcpConnection;
enum class TcpState : std::uint8_t;
}

namespace sttcp::check {

class TcpInvariantAuditor {
public:
    // Full state audit; call after any mutation batch (segment processed,
    // application read/send, timer fired).
    void audit_state(const tcp::TcpConnection& conn, sim::TimePoint now);

    // Outbound-segment audit; call from the connection's emit path with the
    // fully populated segment (ack/window/payload set).
    void audit_emit(const tcp::TcpConnection& conn, const net::TcpSegment& seg,
                    sim::TimePoint now);

    // State-transition audit; called by TcpConnection::transition() — the
    // single sanctioned write to state_ (enforced by tools/staticcheck's
    // state-funnel rule) — before the write happens.
    void audit_transition(const tcp::TcpConnection& conn, tcp::TcpState from,
                          tcp::TcpState to, sim::TimePoint now);

    // Post-rebase audit (ST-TCP ISN adoption / late join). `una` is the new
    // anchor the caller asked for. Also resets monotonicity baselines: a
    // rebase legitimately moves the whole send space.
    void audit_rebase(const tcp::TcpConnection& conn, util::Seq32 una,
                      sim::TimePoint now);

    // Receive-space baselines survive a send-space rebase; this clears
    // everything (open_shadow_join re-anchors both spaces).
    void reset_baselines();

private:
    [[nodiscard]] static std::string describe(const tcp::TcpConnection& conn);

    std::optional<std::uint64_t> last_rcv_offset_;
    std::optional<util::Seq32> last_snd_max_;
    std::optional<util::Seq32> last_emitted_ack_;
    std::optional<util::Seq32> last_window_right_edge_;
};

} // namespace sttcp::check
