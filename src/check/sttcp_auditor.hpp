// ST-TCP protocol-level invariant auditor (primary + backup engines).
//
// Checks the paper's safety rules at the points where the engines act:
//
//   sttcp.retention.release_past_acked       the primary never discards a
//       retained byte past min over live backups' LastByteAcked (Figure 4)
//   sttcp.retention.contiguous_with_first_buffer   the second buffer is
//       exactly [LastByteAcked+1, LastByteRead]: its end abuts the first
//       (TCP) buffer's read point (Figure 4b). A gap here means a read byte
//       was discarded without a backup ack — the unrecoverable-byte bug the
//       whole design exists to prevent.
//   sttcp.retention.capture_gap              bytes entering the second
//       buffer extend it contiguously (LastByteRead advances without holes)
//   sttcp.backup.output_suppressed_pre_takeover    no TCP segment sourced
//       from the service IP leaves the backup before takeover (§4.2)
//   sttcp.backup.isn_synchronized            a shadow anchored from the
//       tapped primary SYN/ACK carries exactly the primary's ISN (§4.1)
//   sttcp.fencing.drop_requires_suspicion    the primary only drops a
//       backup from the ack quorum after its failure detector suspected it
//       (suspicion -> fencing -> certainty, §4.4)
//   sttcp.fencing.takeover_requires_seniors_dead   detector-driven takeover
//       only happens once every member ranked above is confirmed dead (§4.4)
//   sttcp.takeover.at_most_once              the takeover transition fires
//       at most once per backup engine
//
// All checks are stateless pure functions over engine state passed in by
// the hook sites, so the fault-injection tests can also drive them directly
// with corrupted values.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "check/audit.hpp"
#include "util/seq32.hpp"

namespace sttcp::tcp {
class TcpConnection;
}

namespace sttcp::core {
class SecondReceiveBuffer;
}

namespace sttcp::check {

class SttcpInvariantAuditor {
public:
    // -- primary side -------------------------------------------------------
    // Audits one shadowed connection's retention state. `min_backup_acked`
    // is the release bound just applied (engaged right after a release);
    // pass nullopt for a standing-state audit.
    static void audit_retention(const tcp::TcpConnection& conn,
                                const core::SecondReceiveBuffer& retention,
                                std::optional<util::Seq32> min_backup_acked,
                                std::optional<sim::TimePoint> now);

    static void audit_backup_drop(bool detector_suspected, std::string_view backup,
                                  std::optional<sim::TimePoint> now);

    // -- backup side --------------------------------------------------------
    // Audits one egress-filter decision. `allowed` is what the filter is
    // about to return for a segment sourced from the service IP.
    static void audit_egress_decision(bool taken_over, bool src_is_service_ip,
                                      bool allowed, std::string_view where,
                                      std::optional<sim::TimePoint> now);

    // After anchoring a shadow to the tapped primary SYN/ACK (§4.1).
    static void audit_isn_sync(const tcp::TcpConnection& conn, util::Seq32 primary_iss,
                               std::optional<sim::TimePoint> now);

    // Detector-driven succession decided to take over.
    static void audit_takeover(bool already_taken_over, std::size_t live_seniors,
                               std::string_view where,
                               std::optional<sim::TimePoint> now);
};

} // namespace sttcp::check
