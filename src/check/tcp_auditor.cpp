#include "check/tcp_auditor.hpp"

#include <sstream>

#include <string>

#include "net/tcp_wire.hpp"
#include "tcp/state_machine.hpp"
#include "tcp/tcp_connection.hpp"

namespace sttcp::check {

using util::Seq32;

std::string TcpInvariantAuditor::describe(const tcp::TcpConnection& conn) {
    const tcp::FlowKey& key = conn.key();
    std::ostringstream os;
    os << key.local_ip << ':' << key.local_port << "<->" << key.remote_ip << ':'
       << key.remote_port;
    return os.str();
}

void TcpInvariantAuditor::audit_state(const tcp::TcpConnection& conn,
                                      sim::TimePoint now_time) {
    if (conn.state() == tcp::TcpState::kClosed || conn.state() == tcp::TcpState::kListen)
        return;
    std::string where = describe(conn);
    std::optional<sim::TimePoint> now = now_time;

    Seq32 una = conn.snd_una();
    Seq32 nxt = conn.snd_nxt();
    Seq32 max = conn.snd_max();
    std::ostringstream seqs;
    seqs << "una=" << una << " nxt=" << nxt << " max=" << max;

    require(una <= nxt, "tcp.snd.una_le_nxt", where, seqs.str(), now);
    require(nxt <= max, "tcp.snd.nxt_le_max", where, seqs.str(), now);
    if (last_snd_max_) {
        require(*last_snd_max_ <= max, "tcp.snd.max_monotone", where, seqs.str(), now);
    }
    last_snd_max_ = max;

    // The send buffer's front is SND.UNA in *data* space: it lags SND.UNA by
    // one while the SYN is unacknowledged (buffer anchored at ISS+1) and
    // again once the FIN's sequence slot is acknowledged.
    Seq32 buf_una = conn.send_buffer().una();
    std::uint32_t lag_fwd = buf_una - una;   // buffer ahead of una (SYN phase)
    std::uint32_t lag_back = una - buf_una;  // una ahead of buffer (FIN acked)
    require(lag_fwd <= 1 || lag_back <= 1, "tcp.snd.buffer_anchor", where,
            "send buffer front " + std::to_string(buf_una.raw()) +
                " does not track SND.UNA " + std::to_string(una.raw()),
            now);

    Seq32 data_end = conn.send_buffer().end();
    Seq32 nxt_limit = data_end + (conn.fin_sent() ? 1u : 0u);
    require(nxt <= nxt_limit, "tcp.snd.nxt_in_buffer", where,
            "SND.NXT " + std::to_string(nxt.raw()) + " past buffered end " +
                std::to_string(nxt_limit.raw()),
            now);

    const tcp::ReceiveBuffer& rcv = conn.receive_buffer();
    require(rcv.read_offset() <= rcv.stream_offset(), "tcp.rcv.read_le_nxt", where,
            "read_off=" + std::to_string(rcv.read_offset()) +
                " nxt_off=" + std::to_string(rcv.stream_offset()),
            now);
    if (last_rcv_offset_) {
        require(rcv.stream_offset() >= *last_rcv_offset_, "tcp.rcv.nxt_monotone", where,
                "stream offset retreated from " + std::to_string(*last_rcv_offset_) +
                    " to " + std::to_string(rcv.stream_offset()),
                now);
    }
    last_rcv_offset_ = rcv.stream_offset();
}

void TcpInvariantAuditor::audit_emit(const tcp::TcpConnection& conn,
                                     const net::TcpSegment& seg, sim::TimePoint now_time) {
    std::string where = describe(conn);
    std::optional<sim::TimePoint> now = now_time;

    if (seg.flags.ack && !seg.flags.rst) {
        if (last_emitted_ack_) {
            require(*last_emitted_ack_ <= seg.ack, "tcp.ack.monotone", where,
                    "cumulative ACK retreated from " +
                        std::to_string(last_emitted_ack_->raw()) + " to " +
                        std::to_string(seg.ack.raw()),
                    now);
        }
        last_emitted_ack_ = seg.ack;

        // RFC 793: "shrinking the window" — the advertised right edge
        // (ACK + window) must never move left.
        Seq32 right = seg.ack + seg.window;
        if (last_window_right_edge_) {
            require(*last_window_right_edge_ <= right, "tcp.wnd.right_edge_monotone",
                    where,
                    "advertised right edge retracted from " +
                        std::to_string(last_window_right_edge_->raw()) + " to " +
                        std::to_string(right.raw()),
                    now);
        }
        last_window_right_edge_ = right;
    }

    if (!seg.payload.empty() && !seg.flags.rst && !seg.flags.syn) {
        Seq32 buf_una = conn.send_buffer().una();
        Seq32 buf_end = conn.send_buffer().end();
        Seq32 seg_end = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
        require(buf_una <= seg.seq && seg_end <= buf_end, "tcp.emit.payload_in_buffer",
                where,
                "payload [" + std::to_string(seg.seq.raw()) + ", " +
                    std::to_string(seg_end.raw()) + ") outside send buffer [" +
                    std::to_string(buf_una.raw()) + ", " + std::to_string(buf_end.raw()) +
                    ")",
                now);
    }
}

void TcpInvariantAuditor::audit_transition(const tcp::TcpConnection& conn,
                                           tcp::TcpState from, tcp::TcpState to,
                                           sim::TimePoint now_time) {
    require(tcp::is_legal_transition(from, to), "tcp.state.legal_transition",
            describe(conn),
            std::string(tcp::to_string(from)) + " -> " + std::string(tcp::to_string(to)) +
                " is not an edge of the RFC 793 / ST-TCP transition matrix "
                "(tcp/state_machine.hpp, DESIGN.md §10)",
            now_time);
}

void TcpInvariantAuditor::audit_rebase(const tcp::TcpConnection& conn, Seq32 una,
                                       sim::TimePoint now_time) {
    reset_baselines();
    std::string where = describe(conn);
    std::optional<sim::TimePoint> now = now_time;
    bool coherent = conn.iss() + 1u == una && conn.snd_una() == una &&
                    conn.send_buffer().una() == una && conn.snd_nxt() == conn.snd_max();
    std::ostringstream detail;
    detail << "rebase onto " << una << ": iss=" << conn.iss() << " una=" << conn.snd_una()
           << " buf_una=" << conn.send_buffer().una() << " nxt=" << conn.snd_nxt()
           << " max=" << conn.snd_max();
    require(coherent, "tcp.seq.rebase_consistent", where, detail.str(), now);
}

void TcpInvariantAuditor::reset_baselines() {
    last_rcv_offset_.reset();
    last_snd_max_.reset();
    last_emitted_ack_.reset();
    last_window_right_edge_.reset();
}

} // namespace sttcp::check
