// Invariant-violation reporting core for the ST-TCP correctness auditors.
//
// The paper's safety argument rests on invariants that are otherwise only
// implicit in the code (Figure 4's discard rule, §4.1's sequence-space
// synchronization, §4.4's suppression/takeover legality). The auditors in
// this directory check them at runtime; this header is the single funnel
// every violation goes through.
//
// Reporting model (per-thread: one simulation never crosses threads, but
// the soak runner's --jobs mode drives independent simulations on worker
// threads, so the counter, ring and capture target are thread_local —
// each trial's before/after delta only ever sees its own violations):
//   * default: the violation is logged to stderr and a per-thread counter
//     is incremented. The test binary installs a gtest listener that fails
//     any test whose run incremented the counter.
//   * capture: tests that *deliberately* corrupt state install a
//     ScopedCapture; violations are then routed into it (and only it), so a
//     fault-injection test can assert the auditor fired without failing.
//
// Auditing is compiled in when the STTCP_AUDIT CMake option is ON (the
// default). When OFF, kEnabled is false and every hook call site guarded by
// `if constexpr (check::kEnabled)` compiles away; the auditor classes stay
// compiled so unit tests can still exercise them directly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

#ifndef STTCP_AUDIT
#define STTCP_AUDIT 0
#endif

namespace sttcp::check {

inline constexpr bool kEnabled = STTCP_AUDIT != 0;

struct Violation {
    // Stable dotted name, e.g. "sttcp.retention.release_past_acked". The
    // full catalogue lives in DESIGN.md §8.
    std::string invariant;
    // Component or connection the violation belongs to ("10.0.0.100:8000<-...").
    std::string where;
    // Human-readable specifics: the values that broke the invariant.
    std::string detail;
    // Virtual time, when the reporting site has access to the simulation
    // clock (buffer-level hooks do not).
    std::optional<sim::TimePoint> when;
};

class Audit {
public:
    using Handler = std::function<void(const Violation&)>;

    // Routes to the active capture if one is installed, otherwise logs to
    // stderr and increments the process-wide counter.
    static void report(Violation v);

    // Total violations reported outside any capture on this thread since
    // thread start.
    [[nodiscard]] static std::uint64_t violation_count();

    // Most recent uncaptured violations (bounded ring; newest last) — used
    // by the test listener to name the invariant that failed a test.
    [[nodiscard]] static const std::vector<Violation>& recent();

    static void clear_recent();

private:
    friend class ScopedCapture;
    static inline thread_local std::vector<Violation>* capture_ = nullptr;
    static inline thread_local std::uint64_t count_ = 0;
    static inline thread_local std::vector<Violation> recent_;
};

// Redirects every report into `into` for this scope (fault-injection tests).
// Nesting restores the previous capture target.
class ScopedCapture {
public:
    explicit ScopedCapture(std::vector<Violation>& into)
        : previous_(Audit::capture_) {
        Audit::capture_ = &into;
    }
    ~ScopedCapture() { Audit::capture_ = previous_; }

    ScopedCapture(const ScopedCapture&) = delete;
    ScopedCapture& operator=(const ScopedCapture&) = delete;

private:
    std::vector<Violation>* previous_;
};

// Convenience used by auditors: report only when `ok` is false. Returns ok
// so call sites can chain.
bool require(bool ok, std::string_view invariant, std::string_view where,
             std::string detail, std::optional<sim::TimePoint> when = {});

} // namespace sttcp::check
