#include "check/audit.hpp"

#include <cstdio>

namespace sttcp::check {

namespace {
constexpr std::size_t kRecentCap = 32;
} // namespace

void Audit::report(Violation v) {
    if (capture_ != nullptr) {
        capture_->push_back(std::move(v));
        return;
    }
    ++count_;
    if (v.when) {
        std::fprintf(stderr, "[AUDIT] %s violated at t=%.6fs [%s]: %s\n",
                     v.invariant.c_str(), sim::to_seconds(*v.when),
                     v.where.c_str(), v.detail.c_str());
    } else {
        std::fprintf(stderr, "[AUDIT] %s violated [%s]: %s\n", v.invariant.c_str(),
                     v.where.c_str(), v.detail.c_str());
    }
    if (recent_.size() >= kRecentCap) recent_.erase(recent_.begin());
    recent_.push_back(std::move(v));
}

std::uint64_t Audit::violation_count() { return count_; }

const std::vector<Violation>& Audit::recent() { return recent_; }

void Audit::clear_recent() { recent_.clear(); }

bool require(bool ok, std::string_view invariant, std::string_view where,
             std::string detail, std::optional<sim::TimePoint> when) {
    if (!ok) {
        Audit::report(Violation{std::string{invariant}, std::string{where},
                                std::move(detail), when});
    }
    return ok;
}

} // namespace sttcp::check
