#include "check/sttcp_auditor.hpp"

#include <sstream>
#include <string>

#include "sttcp/retention.hpp"
#include "tcp/tcp_connection.hpp"

namespace sttcp::check {

using util::Seq32;

namespace {
std::string flow_of(const tcp::TcpConnection& conn) {
    const tcp::FlowKey& key = conn.key();
    std::ostringstream os;
    os << key.local_ip << ':' << key.local_port << "<->" << key.remote_ip << ':'
       << key.remote_port;
    return os.str();
}
} // namespace

void SttcpInvariantAuditor::audit_retention(const tcp::TcpConnection& conn,
                                            const core::SecondReceiveBuffer& retention,
                                            std::optional<Seq32> min_backup_acked,
                                            std::optional<sim::TimePoint> now) {
    if (!retention.enabled()) return;
    std::string where = flow_of(conn);

    if (min_backup_acked && retention.primed()) {
        // Figure 4: every discarded byte must be <= LastByteAcked. The front
        // of the second buffer is LastByteAcked+1 from the primary's point
        // of view, so it may never pass the quorum ack bound. Before the
        // first byte is retained front_seq() is unanchored (the backup acks
        // the tapped handshake while the client's opening segment may still
        // be in retransmission), so the comparison starts once primed.
        require(retention.front_seq() <= *min_backup_acked + 1u,
                "sttcp.retention.release_past_acked", where,
                "retention front " + std::to_string(retention.front_seq().raw()) +
                    " passed min backup ack bound " +
                    std::to_string(min_backup_acked->raw() + 1),
                now);
    }

    if (retention.size() > 0) {
        // Figure 4b: [second buffer][first buffer] tile the received stream
        // with no hole — a hole is a read byte nobody retains.
        Seq32 retention_end = retention.front_seq() + static_cast<std::uint32_t>(retention.size());
        Seq32 read_seq = conn.receive_buffer().read_seq();
        require(retention_end == read_seq, "sttcp.retention.contiguous_with_first_buffer",
                where,
                "second buffer ends at " + std::to_string(retention_end.raw()) +
                    " but LastByteRead+1 is " + std::to_string(read_seq.raw()) +
                    " — a read byte was discarded without a backup ack",
                now);
    }
}

void SttcpInvariantAuditor::audit_backup_drop(bool detector_suspected,
                                              std::string_view backup,
                                              std::optional<sim::TimePoint> now) {
    require(detector_suspected, "sttcp.fencing.drop_requires_suspicion", backup,
            "backup dropped from the ack quorum without failure-detector suspicion",
            now);
}

void SttcpInvariantAuditor::audit_egress_decision(bool taken_over, bool src_is_service_ip,
                                                  bool allowed, std::string_view where,
                                                  std::optional<sim::TimePoint> now) {
    require(!(allowed && src_is_service_ip && !taken_over),
            "sttcp.backup.output_suppressed_pre_takeover", where,
            "egress filter passed a service-IP segment before takeover", now);
}

void SttcpInvariantAuditor::audit_isn_sync(const tcp::TcpConnection& conn,
                                           Seq32 primary_iss,
                                           std::optional<sim::TimePoint> now) {
    require(conn.iss() == primary_iss, "sttcp.backup.isn_synchronized", flow_of(conn),
            "shadow ISS " + std::to_string(conn.iss().raw()) +
                " != primary ISS " + std::to_string(primary_iss.raw()),
            now);
}

void SttcpInvariantAuditor::audit_takeover(bool already_taken_over,
                                           std::size_t live_seniors,
                                           std::string_view where,
                                           std::optional<sim::TimePoint> now) {
    require(!already_taken_over, "sttcp.takeover.at_most_once", where,
            "succession decided to take over twice", now);
    require(live_seniors == 0, "sttcp.fencing.takeover_requires_seniors_dead", where,
            std::to_string(live_seniors) + " senior(s) still alive at takeover decision",
            now);
}

} // namespace sttcp::check
