file(REMOVE_RECURSE
  "CMakeFiles/sttcp_tcp.dir/host_stack.cpp.o"
  "CMakeFiles/sttcp_tcp.dir/host_stack.cpp.o.d"
  "CMakeFiles/sttcp_tcp.dir/tcp_connection.cpp.o"
  "CMakeFiles/sttcp_tcp.dir/tcp_connection.cpp.o.d"
  "CMakeFiles/sttcp_tcp.dir/tcp_types.cpp.o"
  "CMakeFiles/sttcp_tcp.dir/tcp_types.cpp.o.d"
  "libsttcp_tcp.a"
  "libsttcp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
