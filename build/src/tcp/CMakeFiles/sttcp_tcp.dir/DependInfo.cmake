
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/host_stack.cpp" "src/tcp/CMakeFiles/sttcp_tcp.dir/host_stack.cpp.o" "gcc" "src/tcp/CMakeFiles/sttcp_tcp.dir/host_stack.cpp.o.d"
  "/root/repo/src/tcp/tcp_connection.cpp" "src/tcp/CMakeFiles/sttcp_tcp.dir/tcp_connection.cpp.o" "gcc" "src/tcp/CMakeFiles/sttcp_tcp.dir/tcp_connection.cpp.o.d"
  "/root/repo/src/tcp/tcp_types.cpp" "src/tcp/CMakeFiles/sttcp_tcp.dir/tcp_types.cpp.o" "gcc" "src/tcp/CMakeFiles/sttcp_tcp.dir/tcp_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sttcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sttcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
