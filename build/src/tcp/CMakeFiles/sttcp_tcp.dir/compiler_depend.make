# Empty compiler generated dependencies file for sttcp_tcp.
# This may be replaced when dependencies are built.
