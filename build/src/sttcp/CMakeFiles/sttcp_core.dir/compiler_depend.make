# Empty compiler generated dependencies file for sttcp_core.
# This may be replaced when dependencies are built.
