file(REMOVE_RECURSE
  "CMakeFiles/sttcp_core.dir/backup.cpp.o"
  "CMakeFiles/sttcp_core.dir/backup.cpp.o.d"
  "CMakeFiles/sttcp_core.dir/control_messages.cpp.o"
  "CMakeFiles/sttcp_core.dir/control_messages.cpp.o.d"
  "CMakeFiles/sttcp_core.dir/primary.cpp.o"
  "CMakeFiles/sttcp_core.dir/primary.cpp.o.d"
  "libsttcp_core.a"
  "libsttcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
