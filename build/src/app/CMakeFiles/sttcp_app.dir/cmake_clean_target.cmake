file(REMOVE_RECURSE
  "libsttcp_app.a"
)
