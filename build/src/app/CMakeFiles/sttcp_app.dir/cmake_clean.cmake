file(REMOVE_RECURSE
  "CMakeFiles/sttcp_app.dir/client_driver.cpp.o"
  "CMakeFiles/sttcp_app.dir/client_driver.cpp.o.d"
  "CMakeFiles/sttcp_app.dir/responder.cpp.o"
  "CMakeFiles/sttcp_app.dir/responder.cpp.o.d"
  "libsttcp_app.a"
  "libsttcp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
