file(REMOVE_RECURSE
  "CMakeFiles/sttcp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sttcp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sttcp_sim.dir/simulation.cpp.o"
  "CMakeFiles/sttcp_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/sttcp_sim.dir/time.cpp.o"
  "CMakeFiles/sttcp_sim.dir/time.cpp.o.d"
  "libsttcp_sim.a"
  "libsttcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
