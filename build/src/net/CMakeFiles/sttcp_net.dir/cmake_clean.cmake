file(REMOVE_RECURSE
  "CMakeFiles/sttcp_net.dir/addr.cpp.o"
  "CMakeFiles/sttcp_net.dir/addr.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/arp.cpp.o"
  "CMakeFiles/sttcp_net.dir/arp.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/ethernet.cpp.o"
  "CMakeFiles/sttcp_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/frame_trace.cpp.o"
  "CMakeFiles/sttcp_net.dir/frame_trace.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/hub.cpp.o"
  "CMakeFiles/sttcp_net.dir/hub.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/ipv4.cpp.o"
  "CMakeFiles/sttcp_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/link.cpp.o"
  "CMakeFiles/sttcp_net.dir/link.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/packet_logger.cpp.o"
  "CMakeFiles/sttcp_net.dir/packet_logger.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/switch.cpp.o"
  "CMakeFiles/sttcp_net.dir/switch.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/tcp_wire.cpp.o"
  "CMakeFiles/sttcp_net.dir/tcp_wire.cpp.o.d"
  "CMakeFiles/sttcp_net.dir/udp.cpp.o"
  "CMakeFiles/sttcp_net.dir/udp.cpp.o.d"
  "libsttcp_net.a"
  "libsttcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
