# Empty dependencies file for sttcp_net.
# This may be replaced when dependencies are built.
