
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/addr.cpp" "src/net/CMakeFiles/sttcp_net.dir/addr.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/addr.cpp.o.d"
  "/root/repo/src/net/arp.cpp" "src/net/CMakeFiles/sttcp_net.dir/arp.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/arp.cpp.o.d"
  "/root/repo/src/net/ethernet.cpp" "src/net/CMakeFiles/sttcp_net.dir/ethernet.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/ethernet.cpp.o.d"
  "/root/repo/src/net/frame_trace.cpp" "src/net/CMakeFiles/sttcp_net.dir/frame_trace.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/frame_trace.cpp.o.d"
  "/root/repo/src/net/hub.cpp" "src/net/CMakeFiles/sttcp_net.dir/hub.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/hub.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/sttcp_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/sttcp_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/link.cpp.o.d"
  "/root/repo/src/net/packet_logger.cpp" "src/net/CMakeFiles/sttcp_net.dir/packet_logger.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/packet_logger.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/net/CMakeFiles/sttcp_net.dir/switch.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/switch.cpp.o.d"
  "/root/repo/src/net/tcp_wire.cpp" "src/net/CMakeFiles/sttcp_net.dir/tcp_wire.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/tcp_wire.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/sttcp_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/sttcp_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sttcp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sttcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
