file(REMOVE_RECURSE
  "libsttcp_util.a"
)
