file(REMOVE_RECURSE
  "CMakeFiles/sttcp_util.dir/hexdump.cpp.o"
  "CMakeFiles/sttcp_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/sttcp_util.dir/logging.cpp.o"
  "CMakeFiles/sttcp_util.dir/logging.cpp.o.d"
  "CMakeFiles/sttcp_util.dir/seq32.cpp.o"
  "CMakeFiles/sttcp_util.dir/seq32.cpp.o.d"
  "libsttcp_util.a"
  "libsttcp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
