# Empty dependencies file for sttcp_util.
# This may be replaced when dependencies are built.
