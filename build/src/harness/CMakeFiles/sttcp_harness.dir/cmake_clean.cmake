file(REMOVE_RECURSE
  "CMakeFiles/sttcp_harness.dir/chain_testbed.cpp.o"
  "CMakeFiles/sttcp_harness.dir/chain_testbed.cpp.o.d"
  "CMakeFiles/sttcp_harness.dir/experiment.cpp.o"
  "CMakeFiles/sttcp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/sttcp_harness.dir/nospof_testbed.cpp.o"
  "CMakeFiles/sttcp_harness.dir/nospof_testbed.cpp.o.d"
  "CMakeFiles/sttcp_harness.dir/switch_testbed.cpp.o"
  "CMakeFiles/sttcp_harness.dir/switch_testbed.cpp.o.d"
  "CMakeFiles/sttcp_harness.dir/testbed.cpp.o"
  "CMakeFiles/sttcp_harness.dir/testbed.cpp.o.d"
  "libsttcp_harness.a"
  "libsttcp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttcp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
