file(REMOVE_RECURSE
  "CMakeFiles/replica_chain.dir/replica_chain.cpp.o"
  "CMakeFiles/replica_chain.dir/replica_chain.cpp.o.d"
  "replica_chain"
  "replica_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
