# Empty dependencies file for replica_chain.
# This may be replaced when dependencies are built.
