
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/protocol_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/app/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/app/protocol_test.cpp.o.d"
  "/root/repo/tests/app/responder_client_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/app/responder_client_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/app/responder_client_test.cpp.o.d"
  "/root/repo/tests/net/addr_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/addr_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/addr_test.cpp.o.d"
  "/root/repo/tests/net/devices_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/devices_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/devices_test.cpp.o.d"
  "/root/repo/tests/net/frame_trace_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/frame_trace_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/frame_trace_test.cpp.o.d"
  "/root/repo/tests/net/inline_logger_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/inline_logger_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/inline_logger_test.cpp.o.d"
  "/root/repo/tests/net/packet_logger_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/packet_logger_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/packet_logger_test.cpp.o.d"
  "/root/repo/tests/net/wire_formats_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/net/wire_formats_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/net/wire_formats_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sttcp/chain_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/chain_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/chain_test.cpp.o.d"
  "/root/repo/tests/sttcp/chaos_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/chaos_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/chaos_test.cpp.o.d"
  "/root/repo/tests/sttcp/components_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/components_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/components_test.cpp.o.d"
  "/root/repo/tests/sttcp/engine_unit_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/engine_unit_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/engine_unit_test.cpp.o.d"
  "/root/repo/tests/sttcp/failover_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/failover_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/failover_test.cpp.o.d"
  "/root/repo/tests/sttcp/nospof_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/nospof_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/nospof_test.cpp.o.d"
  "/root/repo/tests/sttcp/scenarios_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/scenarios_test.cpp.o.d"
  "/root/repo/tests/sttcp/switch_tap_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/switch_tap_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/switch_tap_test.cpp.o.d"
  "/root/repo/tests/sttcp/window_transparency_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/sttcp/window_transparency_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/sttcp/window_transparency_test.cpp.o.d"
  "/root/repo/tests/tcp/buffers_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/tcp/buffers_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/tcp/buffers_test.cpp.o.d"
  "/root/repo/tests/tcp/host_stack_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/tcp/host_stack_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/tcp/host_stack_test.cpp.o.d"
  "/root/repo/tests/tcp/rtt_congestion_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/tcp/rtt_congestion_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/tcp/rtt_congestion_test.cpp.o.d"
  "/root/repo/tests/tcp/tcp_end_to_end_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/tcp/tcp_end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/tcp/tcp_end_to_end_test.cpp.o.d"
  "/root/repo/tests/tcp/tcp_protocol_edges_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/tcp/tcp_protocol_edges_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/tcp/tcp_protocol_edges_test.cpp.o.d"
  "/root/repo/tests/util/interval_set_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/util/interval_set_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/util/interval_set_test.cpp.o.d"
  "/root/repo/tests/util/logging_hexdump_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/util/logging_hexdump_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/util/logging_hexdump_test.cpp.o.d"
  "/root/repo/tests/util/ring_buffer_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/util/ring_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/util/ring_buffer_test.cpp.o.d"
  "/root/repo/tests/util/seq32_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/util/seq32_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/util/seq32_test.cpp.o.d"
  "/root/repo/tests/util/wire_test.cpp" "tests/CMakeFiles/sttcp_tests.dir/util/wire_test.cpp.o" "gcc" "tests/CMakeFiles/sttcp_tests.dir/util/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sttcp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sttcp/CMakeFiles/sttcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/sttcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/sttcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sttcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sttcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sttcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
