# Empty dependencies file for sttcp_tests.
# This may be replaced when dependencies are built.
