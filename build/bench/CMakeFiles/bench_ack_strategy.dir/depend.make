# Empty dependencies file for bench_ack_strategy.
# This may be replaced when dependencies are built.
