file(REMOVE_RECURSE
  "CMakeFiles/bench_ack_strategy.dir/bench_ack_strategy.cpp.o"
  "CMakeFiles/bench_ack_strategy.dir/bench_ack_strategy.cpp.o.d"
  "bench_ack_strategy"
  "bench_ack_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ack_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
