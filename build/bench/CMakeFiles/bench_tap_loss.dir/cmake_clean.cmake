file(REMOVE_RECURSE
  "CMakeFiles/bench_tap_loss.dir/bench_tap_loss.cpp.o"
  "CMakeFiles/bench_tap_loss.dir/bench_tap_loss.cpp.o.d"
  "bench_tap_loss"
  "bench_tap_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tap_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
