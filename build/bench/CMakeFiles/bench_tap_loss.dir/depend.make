# Empty dependencies file for bench_tap_loss.
# This may be replaced when dependencies are built.
