# Empty dependencies file for bench_stack_micro.
# This may be replaced when dependencies are built.
