file(REMOVE_RECURSE
  "CMakeFiles/bench_stack_micro.dir/bench_stack_micro.cpp.o"
  "CMakeFiles/bench_stack_micro.dir/bench_stack_micro.cpp.o.d"
  "bench_stack_micro"
  "bench_stack_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stack_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
