// Replica chain: the paper's "one or more backup servers" (§3) in action.
//
// One client downloads a 10 MB file while BOTH servers ahead of the last
// backup die, one after the other:
//
//   t=0.3s   primary crashes    -> backup 1 takes over and PROMOTES to a
//                                  full ST-TCP primary, serving backup 2
//   t=1.5s   backup 1 crashes   -> backup 2 takes over (now plain TCP)
//
// The client's TCP connection survives both failovers; every byte verifies.
//
//   $ ./replica_chain
#include <cstdio>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/chain_testbed.hpp"

using namespace sttcp;

int main() {
    harness::TestbedOptions options;
    options.sttcp.hb_interval = sim::milliseconds{50};
    options.sttcp.sync_time = sim::milliseconds{50};
    harness::ChainTestbed bed{options};

    app::ResponderApp papp, b1app, b2app;
    auto pl = bed.st_primary->listen(8000);
    auto bl1 = bed.st_backup1->listen(8000);
    auto bl2 = bed.st_backup2->listen(8000);
    papp.attach(*pl);
    b1app.attach(*bl1);
    b2app.attach(*bl2);
    bed.st_primary->start();
    bed.st_backup1->start();
    bed.st_backup2->start();

    bed.st_backup1->set_on_failover([&](sim::TimePoint, sim::TimePoint done) {
        std::printf("[%.3fs] backup1 took over and promoted to ST-TCP primary "
                    "(live backups: %zu)\n",
                    sim::to_seconds(done), bed.st_backup1->promoted()->live_backups());
    });
    bed.st_backup2->set_on_failover([&](sim::TimePoint, sim::TimePoint done) {
        std::printf("[%.3fs] backup2 took over (last survivor, plain TCP)\n",
                    sim::to_seconds(done));
    });

    app::ClientDriver client{*bed.client, bed.service_ip(), 8000,
                             app::Workload::bulk_mb(10)};
    bool done = false;
    client.start([&] { done = true; });

    bed.sim.schedule_after(sim::milliseconds{300}, [&] {
        std::printf("[%.3fs] *** primary crashed (%.1f%% downloaded) ***\n",
                    sim::to_seconds(bed.sim.now()),
                    client.result().bytes_received / (10.0 * 1024 * 1024) * 100);
        bed.crash_primary();
    });
    bed.sim.schedule_after(sim::milliseconds{1500}, [&] {
        std::printf("[%.3fs] *** backup1 crashed (%.1f%% downloaded) ***\n",
                    sim::to_seconds(bed.sim.now()),
                    client.result().bytes_received / (10.0 * 1024 * 1024) * 100);
        bed.crash_backup1();
    });

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{3}) {
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});
    }

    const auto& r = client.result();
    std::printf("\n10 MB download %s in %.3f s across TWO server crashes\n",
                r.completed ? "completed" : "FAILED", r.total_seconds());
    std::printf("bytes: %llu, verification errors: %llu\n",
                static_cast<unsigned long long>(r.bytes_received),
                static_cast<unsigned long long>(r.verify_errors));
    std::printf("re-homings by backup2: %llu (switched its control channel to the "
                "promoted primary)\n",
                static_cast<unsigned long long>(bed.st_backup2->stats().rehomings));
    return r.completed && r.verify_errors == 0 ? 0 : 1;
}
