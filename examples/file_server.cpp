// File server (the paper's Bulk-transfer / ftp-like scenario).
//
// A client downloads a 20 MB file from the fault-tolerant service; the
// primary dies a third of the way through. The download continues from the
// backup on the SAME TCP connection — watch the progress meter stall for
// one failover and resume. Run with an argument to change the size in MB:
//
//   $ ./file_server [size_mb]
#include <cstdio>
#include <cstdlib>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"

using namespace sttcp;

int main(int argc, char** argv) {
    std::uint32_t size_mb = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 20;
    if (size_mb == 0 || size_mb > 500) size_mb = 20;

    harness::TestbedOptions options;
    options.sttcp.hb_interval = sim::milliseconds{50};
    options.sttcp.sync_time = sim::milliseconds{50};
    harness::HubTestbed bed{options};

    app::ResponderApp primary_app, backup_app;
    auto pl = bed.st_primary->listen(21);
    auto bl = bed.st_backup->listen(21);
    primary_app.attach(*pl);
    backup_app.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::ClientDriver client{*bed.client, bed.service_ip(), 21,
                             app::Workload::bulk_mb(size_mb)};
    bool done = false;
    client.start([&] { done = true; });

    double crash_at = 0.33 * (size_mb * 8.0 * 1024 * 1024 / 13e6);  // ~1/3 of transfer
    bed.sim.schedule_after(sim::from_seconds(crash_at), [&] {
        std::printf("[%7.3fs] *** primary crashed at %5.1f%% downloaded ***\n",
                    sim::to_seconds(bed.sim.now()),
                    100.0 * static_cast<double>(client.result().bytes_received) /
                        (size_mb * 1024.0 * 1024.0));
        bed.crash_primary();
    });

    // Progress meter on a 250 ms tick.
    std::function<void()> tick = [&]() {
        if (done) return;
        std::printf("[%7.3fs] %6.1f%%  (%llu bytes)\n", sim::to_seconds(bed.sim.now()),
                    100.0 * static_cast<double>(client.result().bytes_received) /
                        (size_mb * 1024.0 * 1024.0),
                    static_cast<unsigned long long>(client.result().bytes_received));
        bed.sim.schedule_after(sim::milliseconds{1000}, tick);
    };
    bed.sim.schedule_after(sim::milliseconds{1000}, tick);

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{10}) {
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{100});
    }

    const auto& r = client.result();
    std::printf("\n%u MB download %s in %.3f s; failover %s; %llu verify errors\n", size_mb,
                r.completed ? "completed" : "FAILED", r.total_seconds(),
                bed.st_backup->has_taken_over() ? "happened" : "did not happen",
                static_cast<unsigned long long>(r.verify_errors));
    return r.completed && r.verify_errors == 0 ? 0 : 1;
}
