// Quickstart: the smallest complete ST-TCP deployment.
//
// Builds the paper's testbed (client + primary + backup on a hub, power
// switch for fencing), serves an echo workload, kills the primary mid-run,
// and shows that the client — a completely standard TCP endpoint — finishes
// the session without noticing anything beyond a brief stall.
//
//   $ ./quickstart
#include <cstdio>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/testbed.hpp"

using namespace sttcp;

int main() {
    // 1. Topology: the paper's three-machine hub LAN. HB/SyncTime = 50 ms,
    //    the paper's fastest (and recommended) setting.
    harness::TestbedOptions options;
    options.sttcp.hb_interval = sim::milliseconds{50};
    options.sttcp.sync_time = sim::milliseconds{50};
    harness::HubTestbed bed{options};

    // 2. The service: one deterministic request/response application,
    //    started identically on the primary and the backup (the backup's
    //    replies are suppressed by its stack until failover).
    app::ResponderApp primary_app, backup_app;
    auto primary_listener = bed.st_primary->listen(8000);
    auto backup_listener = bed.st_backup->listen(8000);
    primary_app.attach(*primary_listener);
    backup_app.attach(*backup_listener);
    bed.st_primary->start();
    bed.st_backup->start();

    bed.st_backup->set_on_failover([&](sim::TimePoint suspected, sim::TimePoint done) {
        std::printf("[%.3fs] backup suspected the primary (3 missed heartbeats)\n",
                    sim::to_seconds(suspected));
        std::printf("[%.3fs] primary fenced via power switch; backup took over the "
                    "connection\n",
                    sim::to_seconds(done));
    });

    // 3. A STANDARD TCP client — no wrappers, no libraries, no idea that the
    //    server is replicated. 100 x 150-byte echo exchanges.
    app::ClientDriver client{*bed.client, bed.service_ip(), 8000, app::Workload::echo()};
    bool done = false;
    client.start([&] { done = true; });

    // 4. Pull the primary's plug mid-run.
    bed.sim.schedule_after(sim::milliseconds{400}, [&] {
        std::printf("[%.3fs] *** primary crashed ***\n", sim::to_seconds(bed.sim.now()));
        bed.crash_primary();
    });

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::seconds{60}) {
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{50});
    }

    const auto& r = client.result();
    std::printf("\nrun %s in %.3f s (virtual time)\n",
                r.completed ? "completed" : "FAILED", r.total_seconds());
    std::printf("bytes received: %llu, verification errors: %llu\n",
                static_cast<unsigned long long>(r.bytes_received),
                static_cast<unsigned long long>(r.verify_errors));
    std::printf("requests served by primary replica: %llu, by backup replica: %llu\n",
                static_cast<unsigned long long>(primary_app.stats().requests_served),
                static_cast<unsigned long long>(backup_app.stats().requests_served));
    std::printf("segments the backup suppressed while shadowing: %llu\n",
                static_cast<unsigned long long>(bed.backup->stats().tcp_segments_suppressed));
    return r.completed && r.verify_errors == 0 ? 0 : 1;
}
