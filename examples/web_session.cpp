// Interactive web-like session (the paper's Interactive / http scenario) on
// SWITCHED Ethernet with the multicast-MAC tap — the deployment the paper
// expects in practice (§3.1, Figure 2): client behind a gateway, primary and
// backup on a switch, the service IP statically mapped to a multicast
// Ethernet address so the switch floods server traffic to the backup.
//
// Prints per-request latency; the single slow request is the failover.
//
//   $ ./web_session
#include <cstdio>

#include "app/client_driver.hpp"
#include "app/responder.hpp"
#include "harness/switch_testbed.hpp"

using namespace sttcp;

int main() {
    harness::TestbedOptions options;
    options.sttcp.hb_interval = sim::milliseconds{50};
    options.sttcp.sync_time = sim::milliseconds{50};
    harness::SwitchTestbed bed{options, harness::TapMode::kMulticastMac};

    app::ResponderApp primary_app, backup_app;
    auto pl = bed.st_primary->listen(80);
    auto bl = bed.st_backup->listen(80);
    primary_app.attach(*pl);
    backup_app.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    app::Workload workload = app::Workload::interactive();
    workload.rounds = 40;
    app::ClientDriver client{*bed.client, bed.service_ip(), 80, workload};
    bool done = false;
    client.start([&] { done = true; });

    bed.sim.schedule_after(sim::milliseconds{450}, [&] {
        std::printf("        *** primary crashed ***\n");
        bed.crash_primary();
    });

    while (!done && bed.sim.now() < sim::TimePoint{} + sim::minutes{2}) {
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{50});
    }

    const auto& r = client.result();
    std::printf("per-request latency (ms) — the spike is the failover:\n");
    for (std::size_t i = 0; i < r.round_seconds.size(); ++i) {
        std::printf("  req %2zu: %8.1f %s\n", i, r.round_seconds[i] * 1e3,
                    r.round_seconds[i] > 0.1 ? "  <-- failover" : "");
    }
    std::printf("\nsession %s: %zu/40 requests, %llu verify errors, failover=%s\n",
                r.completed ? "completed" : "FAILED", r.round_seconds.size(),
                static_cast<unsigned long long>(r.verify_errors),
                bed.st_backup->has_taken_over() ? "yes" : "no");
    std::printf("backup tapped the switch WITHOUT promiscuous mode (multicast groups "
                "SME/GME)\n");
    return r.completed && r.verify_errors == 0 ? 0 : 1;
}
