// Live event feed — the paper's opening motivation ("live broadcast of
// events, on-line brokerage firms"): a server continuously streams ticker
// events; losing the server mid-broadcast must not lose or duplicate a
// single event for connected clients.
//
// Unlike the other examples this one builds its application directly on the
// library's socket API (listener/connection callbacks) instead of
// app::ResponderApp — a template for writing your own ST-TCP service. The
// application is deterministic in the ST-TCP sense: event i's bytes depend
// only on i, so the backup replica emits an identical stream.
//
//   $ ./live_feed
#include <cstdio>

#include "harness/testbed.hpp"

using namespace sttcp;

namespace {

constexpr std::size_t kEventSize = 512;
constexpr std::uint32_t kEventCount = 2000;

// Deterministic event payload: 4-byte big-endian id + pattern.
util::Bytes make_event(std::uint32_t id) {
    util::Bytes e(kEventSize);
    e[0] = static_cast<std::uint8_t>(id >> 24);
    e[1] = static_cast<std::uint8_t>(id >> 16);
    e[2] = static_cast<std::uint8_t>(id >> 8);
    e[3] = static_cast<std::uint8_t>(id);
    for (std::size_t i = 4; i < kEventSize; ++i)
        e[i] = static_cast<std::uint8_t>((id * 131 + i * 7) & 0xff);
    return e;
}

// The feed server: on connect, stream kEventCount events with backpressure.
struct FeedServer {
    void attach(tcp::TcpListener& listener) {
        listener.set_accept_handler([this](std::shared_ptr<tcp::TcpConnection> conn) {
            auto next = std::make_shared<std::uint32_t>(0);
            auto pending = std::make_shared<util::Bytes>();
            auto pump = [this, conn, next, pending]() {
                while (true) {
                    if (pending->empty()) {
                        if (*next >= kEventCount) {
                            conn->close();
                            return;
                        }
                        *pending = make_event((*next)++);
                    }
                    std::size_t n = conn->send(*pending);
                    events_queued += n;
                    if (n < pending->size()) {
                        pending->erase(pending->begin(),
                                       pending->begin() + static_cast<std::ptrdiff_t>(n));
                        return;  // send buffer full; resume on_writable
                    }
                    pending->clear();
                }
            };
            tcp::TcpConnection::Callbacks cbs;
            cbs.on_writable = pump;
            conn->set_callbacks(std::move(cbs));
            pump();
        });
    }
    std::uint64_t events_queued = 0;
};

} // namespace

int main() {
    harness::TestbedOptions options;
    options.sttcp.hb_interval = sim::milliseconds{50};
    options.sttcp.sync_time = sim::milliseconds{50};
    harness::HubTestbed bed{options};

    FeedServer primary_feed, backup_feed;
    auto pl = bed.st_primary->listen(5555);
    auto bl = bed.st_backup->listen(5555);
    primary_feed.attach(*pl);
    backup_feed.attach(*bl);
    bed.st_primary->start();
    bed.st_backup->start();

    // Client: subscribes and validates the event stream byte-for-byte.
    std::uint32_t events_ok = 0;
    std::uint64_t mismatches = 0;
    util::Bytes stream;
    bool closed = false;
    auto conn = bed.client->tcp_connect(bed.service_ip(), 5555);
    tcp::TcpConnection::Callbacks cbs;
    cbs.on_readable = [&]() {
        std::uint8_t buf[4096];
        while (std::size_t n = conn->read(buf)) {
            stream.insert(stream.end(), buf, buf + n);
            while (stream.size() >= kEventSize) {
                util::Bytes expect = make_event(events_ok);
                for (std::size_t i = 0; i < kEventSize; ++i)
                    if (stream[i] != expect[i]) ++mismatches;
                ++events_ok;
                stream.erase(stream.begin(), stream.begin() + kEventSize);
            }
        }
    };
    cbs.on_remote_fin = [&]() { conn->close(); };
    cbs.on_closed = [&](const std::string&) { closed = true; };
    conn->set_callbacks(std::move(cbs));

    bed.sim.schedule_after(sim::milliseconds{250}, [&] {
        std::printf("[%.3fs] *** primary crashed after %u events delivered ***\n",
                    sim::to_seconds(bed.sim.now()), events_ok);
        bed.crash_primary();
    });

    while (!closed && bed.sim.now() < sim::TimePoint{} + sim::minutes{2}) {
        bed.sim.run_until(bed.sim.now() + sim::milliseconds{50});
    }

    std::printf("feed finished: %u/%u events received in order, %llu byte mismatches\n",
                events_ok, kEventCount, static_cast<unsigned long long>(mismatches));
    std::printf("failover: %s; backup suppressed %llu segments while shadowing\n",
                bed.st_backup->has_taken_over() ? "yes" : "no",
                static_cast<unsigned long long>(bed.backup->stats().tcp_segments_suppressed));
    bool ok = events_ok == kEventCount && mismatches == 0;
    std::printf("%s\n", ok ? "PASS: no event lost or corrupted across the failover"
                           : "FAIL");
    return ok ? 0 : 1;
}
